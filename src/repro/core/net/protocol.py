"""Length-prefixed JSON framing for the agent-controller channel.

Frame layout: 4-byte big-endian payload length, then UTF-8 JSON.  The
payload is a dict; requests carry an ``op`` (see the ``OP_*`` constants),
responses carry ``ok`` plus either results or ``error``.  A maximum
frame size guards both sides against a corrupt or hostile peer.

The workhorse op is ``BATCH_DELTA``: the controller sends its
per-element acknowledged sequence numbers and the agent replies with one
machine-batched frame holding only the counter snapshots that changed
since — the streaming collection pipeline of the statistics plane.  The
older per-query ``query`` op remains as the synchronous pull escape
hatch.

Every request frame may additionally carry a :data:`TRACE_FIELD`
holding the caller's serialized trace context
(:class:`~repro.obs.spans.TraceContext`), so a controller-side span and
the agent-side handler span link into one trace across the wire.  The
field is pure telemetry: absent, malformed or garbled contexts never
affect request handling (:func:`extract_trace` degrades to None).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Mapping, Optional

from repro.obs.spans import TraceContext

#: Refuse frames above 16 MiB — a full-machine stat sweep is ~100 KiB.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Request op names understood by the agent server.
OP_PING = "ping"
OP_LIST_ELEMENTS = "list_elements"
OP_STACK_ELEMENTS = "stack_elements"
OP_QUERY = "query"
OP_BATCH_DELTA = "batch_delta"

#: Ops a client may retry blindly after a transport failure.  PING and
#: the listings are pure reads; BATCH_DELTA carries the collector's ack
#: vector, so replaying it at worst re-sends snapshots the mirror
#: dedupes.  QUERY is excluded: it perturbs the agent's per-query
#: overhead accounting (the Figure 16 surface), so a client must not
#: replay one it cannot prove went unprocessed.
IDEMPOTENT_OPS = frozenset(
    {OP_PING, OP_LIST_ELEMENTS, OP_STACK_ELEMENTS, OP_BATCH_DELTA}
)

#: Optional request field carrying the caller's trace context.
TRACE_FIELD = "trace"

_HEADER = struct.Struct(">I")


def inject_trace(
    request: Dict[str, Any], ctx: Optional[TraceContext]
) -> Dict[str, Any]:
    """Stamp the caller's trace context into a request frame (in place).

    A None context leaves the frame untouched, so uninstrumented
    callers produce byte-identical requests to pre-tracing builds.
    """
    if ctx is not None:
        request[TRACE_FIELD] = ctx.to_wire()
    return request


def extract_trace(payload: Mapping[str, Any]) -> Optional[TraceContext]:
    """The peer's trace context, or None when absent or malformed."""
    return TraceContext.from_wire(payload.get(TRACE_FIELD))


def make_batch_delta_request(acked: Optional[Mapping[str, int]]) -> Dict[str, Any]:
    """Request every snapshot newer than the collector's ack vector."""
    return {
        "op": OP_BATCH_DELTA,
        "acked": {str(k): int(v) for k, v in (acked or {}).items()},
    }


def parse_acked(payload: Mapping[str, Any]) -> Dict[str, int]:
    """Validate the ``acked`` field of a BATCH_DELTA request.

    Sequence numbers must be actual non-negative integers: booleans
    (which Python would silently treat as 0/1), negatives, floats and
    strings are all schema violations from a confused or hostile peer.
    """
    raw = payload.get("acked") or {}
    if not isinstance(raw, Mapping):
        raise ProtocolError(f"acked must be a mapping, got {type(raw).__name__}")
    out: Dict[str, int] = {}
    for key, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"acked seq for {key!r} must be an integer, got {value!r}"
            )
        if value < 0:
            raise ProtocolError(
                f"acked seq for {key!r} must be non-negative, got {value!r}"
            )
        out[str(key)] = value
    return out


class ProtocolError(Exception):
    """Framing or schema violation on the agent-controller channel."""


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize and send one frame."""
    try:
        raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable payload: {exc}") from exc
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(raw)} bytes")
    sock.sendall(_HEADER.pack(len(raw)) + raw)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; raises ProtocolError on malformed input and
    ConnectionError on a cleanly closed peer."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced oversized frame: {length} bytes")
    raw = _recv_exact(sock, length)
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame is not an object: {type(payload).__name__}")
    return payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
