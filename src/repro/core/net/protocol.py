"""Framing and op inventory for the agent-controller channel.

Frame layout: 4-byte big-endian payload length, then the payload.  Two
payload encodings share the framing:

* **JSON** (the v0 wire format, and the negotiated fallback): a UTF-8
  JSON object.  Requests carry an ``op`` (see the ``OP_*`` constants),
  responses carry ``ok`` plus either results or ``error``.
* **Packed binary** (:mod:`repro.core.net.codec`): the hot-path
  ``BATCH_DELTA`` exchange as fixed-width element-id/attr-id/value
  records.  Binary payloads start with :data:`BIN_MAGIC` (``0xB1``),
  which can never open a JSON object (``{`` is ``0x7B``), so either
  side classifies every received frame with one byte test
  (:func:`is_binary_frame`).

Codec choice is negotiated once per connection by the ``HELLO`` op
(:data:`OP_HELLO`): the client offers its codecs, the agent picks one
and returns its element/attribute id tables.  A peer that has never
heard of HELLO refuses the op, which the client treats as "JSON-only
old peer" — every op keeps working, just un-packed.  Control ops (PING,
the listings, QUERY, HELLO itself) always speak JSON; only BATCH_DELTA
payloads go binary.

A maximum frame size guards both sides against a corrupt or hostile
peer: the length header is validated **before** any payload read, so a
flipped bit in the header can cost at most :data:`MAX_FRAME_BYTES` of
buffering, never an unbounded read.  Malformed frames surface as
:class:`ProtocolError` carrying the offending op and byte offset when
known.

The workhorse op is ``BATCH_DELTA``: the controller sends its
per-element acknowledged sequence numbers and the agent replies with one
machine-batched frame holding only the counter snapshots that changed
since — the streaming collection pipeline of the statistics plane.  The
older per-query ``query`` op remains as the synchronous pull escape
hatch.

Every request frame may additionally carry a :data:`TRACE_FIELD`
holding the caller's serialized trace context
(:class:`~repro.obs.spans.TraceContext`), so a controller-side span and
the agent-side handler span link into one trace across the wire.  The
field is pure telemetry: absent, malformed or garbled contexts never
affect request handling (:func:`extract_trace` degrades to None).
Binary request frames carry the same context in their trace slot.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Mapping, Optional

from repro.obs.spans import TraceContext

#: Refuse frames above 16 MiB — a full-machine stat sweep is ~100 KiB.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: First byte of every packed-binary payload.  JSON payloads start with
#: ``{`` (0x7B), so this single byte discriminates the two encodings.
BIN_MAGIC = 0xB1

#: Request op names understood by the agent server.
OP_PING = "ping"
OP_LIST_ELEMENTS = "list_elements"
OP_STACK_ELEMENTS = "stack_elements"
OP_QUERY = "query"
OP_BATCH_DELTA = "batch_delta"
OP_HELLO = "hello"

#: Zone -> root ops of the hierarchical control plane.  A zone
#: SUBSCRIBEs once per connection (learning the root's accepted report
#: sequence floor), then pushes ZONE_REPORT roll-ups — per-machine
#: scalars only, never mirror contents.
OP_ZONE_SUBSCRIBE = "zone_subscribe"
OP_ZONE_REPORT = "zone_report"

#: Shard-ownership lookup at the root: "which zone owns this machine
#: *now*?"  The re-homing consult an agent (or its deployment shim)
#: makes after its push target dies — the root answers from the hash
#: ring, which failover keeps current.
OP_ZONE_FOR = "zone_for"

#: Codec names, in client preference order.  ``bin1`` is the packed
#: binary BATCH_DELTA payload (version 1); ``json`` is the v0 format
#: every peer speaks.
CODEC_BIN1 = "bin1"
CODEC_JSON = "json"
SUPPORTED_CODECS = (CODEC_BIN1, CODEC_JSON)

#: Environment knob honoured by both client and server: any non-empty
#: value pins every connection to the JSON fallback — the debugging
#: escape hatch for reading frames off the wire by eye.
FORCE_JSON_ENV = "PERFSIGHT_WIRE_FORCE_JSON"

#: Ops a client may retry blindly after a transport failure.  PING, the
#: listings and HELLO are pure reads; BATCH_DELTA carries the
#: collector's ack vector, so replaying it at worst re-sends snapshots
#: the mirror dedupes.  QUERY is excluded: it perturbs the agent's
#: per-query overhead accounting (the Figure 16 surface), so a client
#: must not replay one it cannot prove went unprocessed.
#: ZONE_SUBSCRIBE is a pure read of the root's ack floor, and
#: ZONE_REPORT carries the zone's monotonic report sequence — the root
#: drops any replayed sequence, so a blind retry after a lost response
#: cannot double-apply a roll-up.  ZONE_FOR is a pure read of the ring.
IDEMPOTENT_OPS = frozenset(
    {
        OP_PING,
        OP_LIST_ELEMENTS,
        OP_STACK_ELEMENTS,
        OP_BATCH_DELTA,
        OP_HELLO,
        OP_ZONE_SUBSCRIBE,
        OP_ZONE_REPORT,
        OP_ZONE_FOR,
    }
)

#: Optional request field carrying the caller's trace context.
TRACE_FIELD = "trace"

_HEADER = struct.Struct(">I")


def inject_trace(
    request: Dict[str, Any], ctx: Optional[TraceContext]
) -> Dict[str, Any]:
    """Stamp the caller's trace context into a request frame (in place).

    A None context leaves the frame untouched, so uninstrumented
    callers produce byte-identical requests to pre-tracing builds.
    """
    if ctx is not None:
        request[TRACE_FIELD] = ctx.to_wire()
    return request


def extract_trace(payload: Mapping[str, Any]) -> Optional[TraceContext]:
    """The peer's trace context, or None when absent or malformed."""
    return TraceContext.from_wire(payload.get(TRACE_FIELD))


def make_hello_request(codecs=SUPPORTED_CODECS) -> Dict[str, Any]:
    """Offer the peer our codecs; the response fixes this connection's."""
    return {"op": OP_HELLO, "codecs": list(codecs)}


def make_batch_delta_request(acked: Optional[Mapping[str, int]]) -> Dict[str, Any]:
    """Request every snapshot newer than the collector's ack vector."""
    return {
        "op": OP_BATCH_DELTA,
        "acked": {str(k): int(v) for k, v in (acked or {}).items()},
    }


def parse_acked(payload: Mapping[str, Any], op: str = OP_BATCH_DELTA) -> Dict[str, int]:
    """Validate the ``acked`` field of a BATCH_DELTA request.

    Sequence numbers must be actual non-negative integers: booleans
    (which Python would silently treat as 0/1), negatives, floats and
    strings are all schema violations from a confused or hostile peer.
    The raised :class:`ProtocolError` names the offending op so the
    client-side log pinpoints which exchange carried the bad vector.
    """
    raw = payload.get("acked") or {}
    if not isinstance(raw, Mapping):
        raise ProtocolError(
            f"acked must be a mapping, got {type(raw).__name__}", op=op
        )
    out: Dict[str, int] = {}
    for key, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"acked seq for {key!r} must be an integer, got {value!r}", op=op
            )
        if value < 0:
            raise ProtocolError(
                f"acked seq for {key!r} must be non-negative, got {value!r}", op=op
            )
        out[str(key)] = value
    return out


class ProtocolError(Exception):
    """Framing or schema violation on the agent-controller channel.

    ``op`` names the operation whose frame was malformed and ``offset``
    the byte position inside the payload where decoding failed, when
    known — so "bare ProtocolError" log lines became actionable: which
    exchange, and where in the frame.
    """

    def __init__(
        self,
        message: str,
        *,
        op: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> None:
        context = []
        if op is not None:
            context.append(f"op={op}")
        if offset is not None:
            context.append(f"byte offset {offset}")
        super().__init__(
            f"{message} ({', '.join(context)})" if context else message
        )
        self.op = op
        self.offset = offset


def is_binary_frame(raw: bytes) -> bool:
    """True when a received payload is packed binary (vs JSON)."""
    return bool(raw) and raw[0] == BIN_MAGIC


def send_frame(sock: socket.socket, raw: bytes, op: Optional[str] = None) -> None:
    """Send one length-prefixed frame of pre-encoded payload bytes."""
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(raw)} bytes", op=op)
    sock.sendall(_HEADER.pack(len(raw)) + raw)


def recv_frame(sock: socket.socket) -> bytes:
    """Receive one frame's payload bytes; the caller classifies them.

    The length header is validated against :data:`MAX_FRAME_BYTES`
    before any payload byte is read, so a corrupt header cannot trigger
    an unbounded read.  Raises ConnectionError on a cleanly closed peer.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced oversized frame: {length} bytes")
    return _recv_exact(sock, length)


def parse_json_frame(raw: bytes, op: Optional[str] = None) -> Dict[str, Any]:
    """Decode one JSON payload; raises ProtocolError on malformed input."""
    if is_binary_frame(raw):
        raise ProtocolError(
            "binary frame where JSON was expected (codec not negotiated?)", op=op
        )
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        offset = getattr(exc, "pos", None)
        if offset is None:
            offset = getattr(exc, "start", None)
        raise ProtocolError(f"bad JSON frame: {exc}", op=op, offset=offset) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame is not an object: {type(payload).__name__}", op=op
        )
    return payload


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize and send one JSON frame."""
    op = payload.get("op") if isinstance(payload.get("op"), str) else None
    try:
        raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable payload: {exc}", op=op) from exc
    send_frame(sock, raw, op=op)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one JSON frame; raises ProtocolError on malformed input and
    ConnectionError on a cleanly closed peer."""
    return parse_json_frame(recv_frame(sock))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
