"""Length-prefixed JSON framing for the agent-controller channel.

Frame layout: 4-byte big-endian payload length, then UTF-8 JSON.  The
payload is a dict; requests carry an ``op`` ("query", "list_elements",
"stack_elements", "ping"), responses carry ``ok`` plus either results or
``error``.  A maximum frame size guards both sides against a corrupt or
hostile peer.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict

#: Refuse frames above 16 MiB — a full-machine stat sweep is ~100 KiB.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Framing or schema violation on the agent-controller channel."""


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize and send one frame."""
    try:
        raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable payload: {exc}") from exc
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(raw)} bytes")
    sock.sendall(_HEADER.pack(len(raw)) + raw)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; raises ProtocolError on malformed input and
    ConnectionError on a cleanly closed peer."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced oversized frame: {length} bytes")
    raw = _recv_exact(sock, length)
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame is not an object: {type(payload).__name__}")
    return payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
