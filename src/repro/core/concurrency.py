"""Concurrency primitives for the collection plane.

The controller fans ``mirror.sync()`` out over a worker pool, the wire
client multiplexes concurrent callers over a small connection pool, and
the agent server lets read-only ops run side by side — all built on the
two primitives here:

:class:`RWLock`
    A reader/writer lock with writer preference.  Any number of readers
    share the lock; a writer excludes everyone.  A waiting writer blocks
    *new* readers so a steady read stream cannot starve the write side
    (the agent's sweep/drain path must never wait forever behind query
    traffic).  The lock keeps acquisition statistics —
    :attr:`RWLock.max_concurrent_readers` in particular — so tests can
    *assert* that reads really did overlap instead of eyeballing
    timings.

:class:`ConnectionPool`
    A bounded checkout/checkin pool of homogeneous resources (sockets,
    in the wire client).  Checkout reuses the most recently returned
    idle resource (LIFO keeps connections warm), creates a fresh one
    while under ``max_size``, and otherwise blocks until a peer checks
    one in.  Broken resources are *discarded* rather than checked in,
    which frees their slot immediately.  Idle resources older than
    ``max_idle_s`` are reaped opportunistically on the next checkout.

Neither primitive imports the observability facade: callers that want
pool gauges pass an ``on_change`` callback (see the wire client), so
the module stays dependency-free and unit-testable on its own.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class LockTimeout(RuntimeError):
    """An RWLock acquisition gave up before the lock became free."""


class PoolTimeout(OSError):
    """A pool checkout waited out its budget with every slot in use.

    Deliberately an ``OSError``: to the wire client's retry loop an
    exhausted pool looks like any other transient transport failure —
    the request never left the process, so retrying it is always safe.
    """


class PoolClosed(OSError):
    """Checkout against a pool that has been shut down."""


class RWLock:
    """A reader/writer lock with writer preference and visible stats.

    Not reentrant on either side, and deliberately so: the collection
    plane's critical sections are small and flat, and reentrancy would
    hide lock-ordering mistakes instead of deadlocking loudly in tests.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: Acquisition statistics, readable without the lock (ints are
        #: only ever written under ``_cond``; torn reads are impossible
        #: under the GIL and staleness is fine for telemetry).
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.max_concurrent_readers = 0

    # -- read side ----------------------------------------------------------------

    def acquire_read(self, timeout_s: Optional[float] = None) -> None:
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            # A waiting writer gates new readers (writer preference).
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    raise LockTimeout("timed out waiting for read lock")
            self._active_readers += 1
            self.read_acquisitions += 1
            self.max_concurrent_readers = max(
                self.max_concurrent_readers, self._active_readers
            )

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # -- write side ---------------------------------------------------------------

    def acquire_write(self, timeout_s: Optional[float] = None) -> None:
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    if not self._wait(deadline):
                        raise LockTimeout("timed out waiting for write lock")
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.write_acquisitions += 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    def _wait(self, deadline: Optional[float]) -> bool:
        """One condition wait against ``deadline``; False when expired."""
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return self._cond.wait(remaining) or deadline > time.monotonic()

    # -- context managers ---------------------------------------------------------

    @contextmanager
    def read_locked(self, timeout_s: Optional[float] = None) -> Iterator[None]:
        self.acquire_read(timeout_s)
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self, timeout_s: Optional[float] = None) -> Iterator[None]:
        self.acquire_write(timeout_s)
        try:
            yield
        finally:
            self.release_write()

    # -- introspection ------------------------------------------------------------

    @property
    def readers(self) -> int:
        return self._active_readers

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RWLock(readers={self._active_readers}, "
            f"writer={self._writer_active}, waiting={self._writers_waiting})"
        )


class ConnectionPool(Generic[T]):
    """Bounded checkout/checkin pool with idle reaping.

    ``factory`` creates a resource (may raise — the error propagates to
    the checking-out caller, and no slot stays burned); ``closer``
    disposes of one (its errors are swallowed: the resource was broken
    or surplus either way).  ``max_idle_s`` bounds how long an idle
    resource survives between uses; ``None`` keeps them forever.

    ``on_change(in_use, idle)`` fires after every state change so the
    owner can export gauges without this module knowing about metrics.

    The closer is never invoked while the pool lock is held: reaping
    unhooks expired resources under the lock, then closes them outside
    it, so a slow (or pool-re-entrant) closer cannot stall checkouts and
    a reap racing a checkout cannot hand out a just-closed resource.
    """

    def __init__(
        self,
        factory: Callable[[], T],
        closer: Callable[[T], None],
        max_size: int = 4,
        max_idle_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_change: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1: {max_size!r}")
        if max_idle_s is not None and max_idle_s <= 0:
            raise ValueError(f"max_idle_s must be positive: {max_idle_s!r}")
        self._factory = factory
        self._closer = closer
        self.max_size = max_size
        self.max_idle_s = max_idle_s
        self._clock = clock
        self._on_change = on_change
        self._cond = threading.Condition()
        self._idle: List[Tuple[T, float]] = []  # (resource, checkin time)
        self._in_use = 0
        self._closed = False
        #: Lifetime counters.
        self.created = 0
        self.reused = 0
        self.discarded = 0
        self.reaped = 0

    # -- checkout / checkin -------------------------------------------------------

    def checkout(self, timeout_s: Optional[float] = None) -> T:
        """Borrow a resource; blocks while all ``max_size`` are in use."""
        deadline = None if timeout_s is None else self._clock() + timeout_s
        # Expired idle resources are unhooked from ``_idle`` under the
        # lock but closed only after it is released (see ``finally``):
        # closing under the lock would stall every concurrent checkout
        # behind a slow closer, and a closer that ever touched the pool
        # would deadlock.  Because removal is atomic, no peer can check
        # out a resource that is about to be closed.
        expired: List[T] = []
        try:
            with self._cond:
                while True:
                    if self._closed:
                        raise PoolClosed("pool is closed")
                    expired.extend(self._take_expired_locked())
                    if self._idle:
                        resource, _ = self._idle.pop()  # LIFO: warmest first
                        self._in_use += 1
                        self.reused += 1
                        self._notify_change_locked()
                        return resource
                    if self._in_use < self.max_size:
                        # Create outside the condition so a slow connect
                        # does not block peers returning resources; the
                        # slot is reserved first so the bound holds.
                        self._in_use += 1
                        break
                    if deadline is not None:
                        remaining = deadline - self._clock()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if deadline <= self._clock():
                                raise PoolTimeout(
                                    f"no free connection within {timeout_s}s "
                                    f"({self.max_size} in use)"
                                )
                    else:
                        self._cond.wait()
        finally:
            for stale in expired:
                self._close_quietly(stale)
        try:
            resource = self._factory()
        except BaseException:
            with self._cond:
                self._in_use -= 1
                self._cond.notify()
                self._notify_change_locked()
            raise
        with self._cond:
            self.created += 1
            self._notify_change_locked()
        return resource

    def checkin(self, resource: T) -> None:
        """Return a healthy resource for reuse."""
        with self._cond:
            if self._in_use <= 0:
                raise RuntimeError("checkin without a matching checkout")
            self._in_use -= 1
            if self._closed:
                self._close_quietly(resource)
            else:
                self._idle.append((resource, self._clock()))
            self._cond.notify()
            self._notify_change_locked()

    def discard(self, resource: T) -> None:
        """Drop a broken resource; its slot frees up immediately."""
        self._close_quietly(resource)
        with self._cond:
            if self._in_use <= 0:
                raise RuntimeError("discard without a matching checkout")
            self._in_use -= 1
            self.discarded += 1
            self._cond.notify()
            self._notify_change_locked()

    # -- maintenance --------------------------------------------------------------

    def reap_idle(self) -> int:
        """Close idle resources older than ``max_idle_s``; returns count.

        Expired entries are removed from the idle list atomically under
        the pool lock and closed only after it is released.  The order
        matters: a reap racing a checkout must never hand the peer a
        just-closed resource, so a resource is either still pooled and
        open, or already unhooked and invisible to checkouts by the time
        its closer runs.
        """
        with self._cond:
            expired = self._take_expired_locked()
            self._notify_change_locked()
        for resource in expired:
            self._close_quietly(resource)
        return len(expired)

    def _take_expired_locked(self) -> List[T]:
        """Unhook idle entries past ``max_idle_s``; caller closes them.

        Must run under ``_cond``.  Returns the expired resources without
        closing them — invoking the closer under the pool lock would
        serialize every checkout behind it (and deadlock if a closer
        re-entered the pool), so disposal is the caller's job once the
        lock is dropped.
        """
        if self.max_idle_s is None or not self._idle:
            return []
        cutoff = self._clock() - self.max_idle_s
        expired: List[T] = []
        keep: List[Tuple[T, float]] = []
        for resource, idle_since in self._idle:
            if idle_since <= cutoff:
                expired.append(resource)
                self.reaped += 1
            else:
                keep.append((resource, idle_since))
        self._idle = keep
        return expired

    def close_all(self) -> None:
        """Close every idle resource and refuse new checkouts.

        Checked-out resources stay with their borrowers; returning them
        closes them instead of pooling them.
        """
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._cond.notify_all()
            self._notify_change_locked()
        for resource, _ in idle:
            self._close_quietly(resource)

    def reopen(self) -> None:
        """Allow checkouts again after :meth:`close_all` (reconnect path)."""
        with self._cond:
            self._closed = False

    def _close_quietly(self, resource: T) -> None:
        try:
            self._closer(resource)
        except Exception:
            pass

    def _notify_change_locked(self) -> None:
        if self._on_change is not None:
            self._on_change(self._in_use, len(self._idle))

    # -- introspection ------------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def idle(self) -> int:
        return len(self._idle)

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConnectionPool(in_use={self._in_use}, idle={len(self._idle)}, "
            f"max={self.max_size})"
        )
