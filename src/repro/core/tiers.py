"""Tiered (coarsening) history store — bounded memory for long retention.

A flat :class:`~repro.core.store.TimeSeriesStore` costs O(elements ×
window) per machine: holding an hour of 1 Hz history needs 3600 ring
slots per element, and the zone controllers hit their memory cap long
before they run out of CPU.  PrintQueue's answer — adopted here — is
**coarsening time windows**: keep the most recent N samples at full
resolution, and when a sample falls off the fine ring, merge it into
progressively coarser buckets (2x, 4x, 8x… fine slots per bucket) that
each keep only per-attribute ``sum``/``min``/``max``/``last`` plus the
bucket's last raw row.  Old history degrades in resolution, never in
span, and total memory is a small constant per element.

Layout per element (fanout 2, three coarse tiers)::

    newest ──────────────────────────────────────────────── oldest
    [ fine ring: N raw slots ] [ tier1: 2-slot buckets ]
                               [ tier2: 4-slot buckets ]
                               [ tier3: 8-slot buckets ] (drop)

Invariants the rest of the system depends on:

* **The fine ring is byte-identical to a flat store's.**  Eviction
  copies the dying row into tier 1 *before* the slot is recycled and
  touches nothing else, so every hot-path read — ``latest``,
  ``window_ending_now``, ``changed_blocks``, the Algorithm-1/2
  verdict machinery — sees exactly what a flat
  :class:`TimeSeriesStore` of the same capacity would hold.
* **Each coarse bucket retains its last raw row verbatim** (seq,
  timestamp, values with ABSENT cells preserved), so a stitched
  ``at_or_before``/``window`` read returns *real retained samples* —
  the same latest-sample-at-or-before semantics as the flat store,
  just over a sparser retained set as queries reach further back.
* **Sums/mins/maxes are exact merges** of the evicted fine rows
  (ABSENT cells never vote), so historical trend queries aggregate
  precisely what was measured, not an approximation.
* **No window ever straddles a producer restart**: a counter-reset
  re-baseline clears the coarse tiers along with the fine ring, the
  same guarantee the flat store gives.

Config rides :class:`TierConfig`; the env knobs (``PERFSIGHT_FINE_SLOTS``,
``PERFSIGHT_TIER_FANOUT``, ``PERFSIGHT_COARSE_SLOTS``,
``PERFSIGHT_COARSE_TIERS``) let a deployment trade fine retention
against total footprint without code changes.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.counters import ABSENT, CounterSnapshot, CounterWindow
from repro.core.store import (
    DEFAULT_CAPACITY_PER_ELEMENT,
    StoreError,
    TimeSeriesStore,
    _ElementSeries,
)

__all__ = [
    "TierConfig",
    "TieredWindowStore",
    "BucketStats",
]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class TierConfig:
    """Shape of one element's tier chain.

    ``fine_slots`` is the full-resolution ring capacity; each of the
    ``coarse_tiers`` levels holds up to ``coarse_slots`` sealed buckets
    spanning ``fanout**level`` fine slots apiece.  A bucket evicted
    from the last tier is dropped — that is what bounds memory.
    """

    fine_slots: int = DEFAULT_CAPACITY_PER_ELEMENT
    fanout: int = 2
    coarse_slots: int = 32
    coarse_tiers: int = 3

    def __post_init__(self) -> None:
        if self.fine_slots < 2:
            raise ValueError(
                f"fine_slots must hold a window pair: {self.fine_slots!r}"
            )
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2: {self.fanout!r}")
        if self.coarse_slots < 1:
            raise ValueError(f"coarse_slots must be >= 1: {self.coarse_slots!r}")
        if self.coarse_tiers < 0:
            raise ValueError(f"coarse_tiers must be >= 0: {self.coarse_tiers!r}")

    @classmethod
    def from_env(cls, **overrides: int) -> "TierConfig":
        """Read the ``PERFSIGHT_*`` knobs, explicit overrides winning."""
        values = {
            "fine_slots": _env_int(
                "PERFSIGHT_FINE_SLOTS", cls.fine_slots
            ),
            "fanout": _env_int("PERFSIGHT_TIER_FANOUT", cls.fanout),
            "coarse_slots": _env_int(
                "PERFSIGHT_COARSE_SLOTS", cls.coarse_slots
            ),
            "coarse_tiers": _env_int(
                "PERFSIGHT_COARSE_TIERS", cls.coarse_tiers
            ),
        }
        values.update(overrides)
        return cls(**values)

    def span_slots(self, level: int) -> int:
        """Fine slots per bucket at tier ``level`` (1-based)."""
        return self.fanout ** level

    def retention_slots(self) -> int:
        """Total fine-slot-equivalents of history the chain can span."""
        return self.fine_slots + sum(
            self.coarse_slots * self.span_slots(level)
            for level in range(1, self.coarse_tiers + 1)
        )


@dataclass(frozen=True)
class BucketStats:
    """Introspection view of one coarse bucket (property-test surface)."""

    level: int
    first_ts: float
    last_ts: float
    last_seq: int
    samples: int
    units: int
    sums: Dict[str, float]
    mins: Dict[str, float]
    maxs: Dict[str, float]
    lasts: Dict[str, float]


class _CoarseBucket:
    """One coarse bucket: merged stats + the last raw row, columnar.

    The four stat arrays share the bucket's ``names`` tuple;
    ``ABSENT``/NaN cells mean "no data for this attribute yet" and are
    skipped by every merge, so sums/mins/maxes are exact over the
    non-absent evicted cells.  ``vlast`` is the newest absorbed row
    *verbatim* (ABSENT cells preserved), which is what stitched reads
    materialize as a retained sample.
    """

    __slots__ = (
        "names",
        "first_ts",
        "last_ts",
        "last_seq",
        "samples",
        "units",
        "vsum",
        "vmin",
        "vmax",
        "vlast",
        "_snap",
    )

    def __init__(
        self,
        names: Tuple[str, ...],
        seq: int,
        timestamp: float,
        values: Sequence[float],
    ) -> None:
        self.names = names
        self.first_ts = timestamp
        self.last_ts = timestamp
        self.last_seq = seq
        self.samples = 1
        self.units = 1
        self.vsum = array("d", values)
        self.vmin = array("d", values)
        self.vmax = array("d", values)
        self.vlast = array("d", values)
        self._snap: Optional[CounterSnapshot] = None

    def _widen_to(self, names: Tuple[str, ...]) -> None:
        """Grow the stat arrays for a schema that gained attributes.

        Attribute schemas only ever grow by appending (see
        ``_ElementSeries._widen``), so the existing columns stay
        position-aligned and the new ones start ABSENT.
        """
        pad = array("d", [ABSENT]) * (len(names) - len(self.names))
        self.vsum += pad
        self.vmin += pad
        self.vmax += pad
        self.vlast += pad
        self.names = names

    def merge_from(self, other: "_CoarseBucket") -> None:
        """Absorb a strictly newer bucket into this one."""
        if len(other.names) > len(self.names):
            self._widen_to(other.names)
        self.last_ts = other.last_ts
        self.last_seq = other.last_seq
        self.samples += other.samples
        self.units += other.units
        vsum, vmin, vmax, vlast = self.vsum, self.vmin, self.vmax, self.vlast
        for col in range(len(other.names)):
            o_sum = other.vsum[col]
            if o_sum == o_sum:  # non-ABSENT
                s = vsum[col]
                vsum[col] = o_sum if s != s else s + o_sum
            o_min = other.vmin[col]
            if o_min == o_min:
                m = vmin[col]
                vmin[col] = o_min if m != m else min(m, o_min)
            o_max = other.vmax[col]
            if o_max == o_max:
                m = vmax[col]
                vmax[col] = o_max if m != m else max(m, o_max)
            # ``last`` is the newer row verbatim — ABSENT included, so a
            # stitched read sees exactly the sample that was evicted.
            vlast[col] = other.vlast[col]
        self._snap = None

    def snapshot(self, element_id: str, machine: str) -> CounterSnapshot:
        """The bucket's retained sample: its last raw row."""
        snap = self._snap
        if snap is None:
            snap = self._snap = CounterSnapshot.from_columns(
                element_id,
                machine,
                self.last_seq,
                self.last_ts,
                self.names,
                self.vlast,
            )
        return snap

    def nbytes(self) -> int:
        return sum(
            len(arr) * arr.itemsize
            for arr in (self.vsum, self.vmin, self.vmax, self.vlast)
        )


class _Tier:
    """One coarse level: an open accumulating bucket + sealed ring."""

    __slots__ = ("span", "capacity", "open", "sealed")

    def __init__(self, span: int, capacity: int) -> None:
        self.span = span
        self.capacity = capacity
        self.open: Optional[_CoarseBucket] = None
        self.sealed: List[_CoarseBucket] = []  # oldest first

    def absorb(self, bucket: _CoarseBucket) -> Optional[_CoarseBucket]:
        """Merge one incoming bucket; returns the overflow, if any.

        The incoming bucket is always strictly newer than everything
        held.  When the open bucket reaches this tier's span it seals
        into the ring; a ring past capacity sheds its *oldest* sealed
        bucket, which cascades into the next-coarser tier.
        """
        if self.open is None:
            self.open = bucket
        else:
            self.open.merge_from(bucket)
        if self.open.units >= self.span:
            self.sealed.append(self.open)
            self.open = None
            if len(self.sealed) > self.capacity:
                return self.sealed.pop(0)
        return None

    def buckets_oldest_first(self) -> List[_CoarseBucket]:
        out = list(self.sealed)
        if self.open is not None:
            out.append(self.open)
        return out

    def nbytes(self) -> int:
        total = sum(b.nbytes() for b in self.sealed)
        if self.open is not None:
            total += self.open.nbytes()
        return total


class _ElementTiers:
    """The coarse tier chain of one element (tier 1 = finest coarse)."""

    __slots__ = ("tiers",)

    def __init__(self, config: TierConfig) -> None:
        self.tiers = [
            _Tier(config.span_slots(level), config.coarse_slots)
            for level in range(1, config.coarse_tiers + 1)
        ]

    def absorb(self, bucket: _CoarseBucket) -> None:
        overflow: Optional[_CoarseBucket] = bucket
        for tier in self.tiers:
            overflow = tier.absorb(overflow)
            if overflow is None:
                return
        # Overflow past the coarsest tier falls off the end of history;
        # that drop is precisely what bounds the chain's memory.

    def samples_oldest_first(self) -> List[Tuple[int, _CoarseBucket]]:
        """(level, bucket) pairs ordered oldest history first."""
        out: List[Tuple[int, _CoarseBucket]] = []
        for level in range(len(self.tiers), 0, -1):
            for bucket in self.tiers[level - 1].buckets_oldest_first():
                out.append((level, bucket))
        return out

    def nbytes_per_level(self) -> List[int]:
        return [tier.nbytes() for tier in self.tiers]


class TieredWindowStore(TimeSeriesStore):
    """A :class:`TimeSeriesStore` whose evicted history coarsens, not dies.

    Drop-in for the flat store: every ingest and hot-path read behaves
    identically (the fine ring *is* a flat store's ring).  The
    difference is in ``window``/``at_or_before`` for times that predate
    the fine ring: instead of collapsing onto the oldest fine sample,
    the lookup transparently stitches in the coarse tiers' retained
    samples, so historical queries keep real answers for the whole
    retention span at progressively coarser resolution.
    """

    def __init__(
        self,
        capacity_per_element: Optional[int] = None,
        on_regression: str = "rebaseline",
        config: Optional[TierConfig] = None,
    ) -> None:
        self.tier_config = config if config is not None else TierConfig.from_env()
        if capacity_per_element is None:
            capacity_per_element = self.tier_config.fine_slots
        super().__init__(capacity_per_element, on_regression)
        self._tiers: Dict[str, _ElementTiers] = {}

    # -- eviction cascade (runs under the store lock) ----------------------------

    def _make_series(self, element_id: str, machine: str) -> _ElementSeries:
        series = super()._make_series(element_id, machine)
        series.on_evict = self._absorb_evicted
        series.on_clear = self._drop_coarse
        return series

    def _absorb_evicted(self, series: _ElementSeries, slot: int) -> None:
        """Fold one dying fine row into the element's tier chain."""
        names = series.attr_names
        stride = len(names)
        base = slot * stride
        bucket = _CoarseBucket(
            names,
            series.seqs[slot],
            series.stamps[slot],
            series.values[base: base + stride],
        )
        tiers = self._tiers.get(series.element_id)
        if tiers is None:
            tiers = self._tiers[series.element_id] = _ElementTiers(
                self.tier_config
            )
        tiers.absorb(bucket)

    def _drop_coarse(self, series: _ElementSeries) -> None:
        """A re-baseline invalidates pre-restart history entirely.

        Diffing across a producer restart is meaningless (counters
        re-zeroed), so the coarse tiers are cleared along with the fine
        ring — no stitched window ever straddles a restart.
        """
        self._tiers.pop(series.element_id, None)

    def clear(self) -> None:
        with self._lock:
            super().clear()
            self._tiers.clear()

    # -- stitched reads ----------------------------------------------------------

    def _coarse_at_or_before(
        self, element_id: str, t: float
    ) -> Optional[CounterSnapshot]:
        series = self._series.get(element_id)
        tiers = self._tiers.get(element_id)
        if series is None or tiers is None:
            return None
        best: Optional[_CoarseBucket] = None
        for _level, bucket in tiers.samples_oldest_first():
            if bucket.last_ts <= t + 1e-12:
                best = bucket  # keep walking: newest qualifying wins
            else:
                break
        if best is None:
            return None
        return best.snapshot(element_id, series.machine)

    def _oldest_retained(self, element_id: str) -> Optional[CounterSnapshot]:
        series = self._series.get(element_id)
        tiers = self._tiers.get(element_id)
        if series is not None and tiers is not None:
            for _level, bucket in tiers.samples_oldest_first():
                return bucket.snapshot(element_id, series.machine)
        return None

    def at_or_before(self, element_id: str, t: float) -> CounterSnapshot:
        """Latest retained sample <= ``t``, fine ring first, then tiers."""
        with self._lock:
            try:
                return super().at_or_before(element_id, t)
            except StoreError:
                snap = self._coarse_at_or_before(element_id, t)
                if snap is None:
                    raise
                return snap

    def window(self, element_id: str, t0: float, t1: float) -> CounterWindow:
        """``[t0, t1]`` activity, stitched across fine and coarse tiers.

        Bounds inside the fine ring resolve exactly as the flat store
        would; bounds older than the fine ring resolve against the
        coarse tiers' retained samples.  The start bound still falls
        back to the oldest *retained* sample when history no longer
        reaches ``t0`` — same contract as the flat store, just with a
        much longer reach.
        """
        if t1 < t0:
            raise ValueError(f"window ends before it starts: [{t0}, {t1}]")
        with self._lock:
            series = self._get_series(element_id)
            end = self.at_or_before(element_id, t1)
            try:
                start = self.at_or_before(element_id, t0)
            except StoreError:
                start = self._oldest_retained(element_id)
                if start is None:
                    start = series.materialize(0)
            return CounterWindow(start=start, end=end)

    # -- introspection -----------------------------------------------------------

    def coarse_buckets(self, element_id: str) -> List[BucketStats]:
        """Every coarse bucket of one element, oldest history first.

        The property-test surface: exposes each bucket's exact merged
        sums/mins/maxes (ABSENT cells omitted) so tests can check them
        against independently-tracked evicted rows.
        """
        with self._lock:
            tiers = self._tiers.get(element_id)
            if tiers is None:
                return []
            out: List[BucketStats] = []
            for level, bucket in tiers.samples_oldest_first():
                names = bucket.names

                def _strip(arr: array) -> Dict[str, float]:
                    return {
                        names[i]: arr[i]
                        for i in range(len(names))
                        if arr[i] == arr[i]
                    }

                out.append(
                    BucketStats(
                        level=level,
                        first_ts=bucket.first_ts,
                        last_ts=bucket.last_ts,
                        last_seq=bucket.last_seq,
                        samples=bucket.samples,
                        units=bucket.units,
                        sums=_strip(bucket.vsum),
                        mins=_strip(bucket.vmin),
                        maxs=_strip(bucket.vmax),
                        lasts=_strip(bucket.vlast),
                    )
                )
            return out

    def retention_span(self, element_id: str) -> Tuple[float, float]:
        """(oldest retained ts, newest ts) across fine + coarse history."""
        with self._lock:
            series = self._get_series(element_id)
            newest = series.stamp_at(series.count - 1)
            oldest = series.stamp_at(0)
            tiers = self._tiers.get(element_id)
            if tiers is not None:
                for _level, bucket in tiers.samples_oldest_first():
                    oldest = min(oldest, bucket.first_ts)
                    break
            return oldest, newest

    # -- accounting --------------------------------------------------------------

    def nbytes(self) -> Dict[str, int]:
        """Buffer bytes per tier: ``fine``, ``tier<k>``, ``coarse``, ``total``."""
        with self._lock:
            out = super().nbytes()
            levels = self.tier_config.coarse_tiers
            per_level = [0] * levels
            for tiers in self._tiers.values():
                for i, n in enumerate(tiers.nbytes_per_level()):
                    per_level[i] += n
            coarse = 0
            for i, n in enumerate(per_level):
                out[f"tier{i + 1}"] = n
                coarse += n
            out["coarse"] = coarse
            out["total"] = out["fine"] + coarse
            return out
