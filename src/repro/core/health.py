"""Agent health tracking for the collection plane.

PerfSight's controller depends on a fleet of per-server agents reached
over a management network; both the agents and the network can fail
while the dataplane being diagnosed keeps running.  A diagnosis system
that dies with its own measurement path is useless exactly when it is
needed most, so the controller tracks a small per-agent health state
machine and keeps answering queries from its mirror stores — with an
explicit data-quality annotation — while an agent is unreachable.

States::

    HEALTHY --(degraded_after consecutive failed syncs)--> DEGRADED
    DEGRADED --(dead_after consecutive failed syncs)-----> DEAD
    DEGRADED/DEAD --(recover_after consecutive successes)-> HEALTHY

Thresholds are counted in *consecutive* collection attempts, not wall
time, so the machine behaves identically under simulated and real
clocks and under any refresh cadence.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs

#: The three agent health states, in degradation order.
HEALTHY = "healthy"
DEGRADED = "degraded"
DEAD = "dead"

HEALTH_STATES = (HEALTHY, DEGRADED, DEAD)

_STATE_RANK = {state: rank for rank, state in enumerate(HEALTH_STATES)}


def count_states(states: Iterable[str]) -> Dict[str, int]:
    """Histogram of health states, every known state always present.

    The hierarchy's roll-up currency: a zone summarizes its shard as
    these three integers instead of forwarding per-agent objects, and
    the fleet tier adds histograms together.
    """
    counts = dict.fromkeys(HEALTH_STATES, 0)
    for state in states:
        counts[state] = counts.get(state, 0) + 1
    return counts


def merge_state_counts(parts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-zone state histograms into a fleet histogram."""
    total = dict.fromkeys(HEALTH_STATES, 0)
    for part in parts:
        for state, n in part.items():
            total[state] = total.get(state, 0) + n
    return total


def worst_state(states: Iterable[str]) -> str:
    """The most degraded state present (HEALTHY for an empty input).

    Unknown states rank worst: a roll-up must not report a fleet
    healthier than a tier it failed to understand.
    """
    worst = HEALTHY
    worst_rank = _STATE_RANK[worst]
    for state in states:
        rank = _STATE_RANK.get(state, len(HEALTH_STATES))
        if rank > worst_rank:
            worst, worst_rank = state, rank
    return worst

#: Self-observability: every state-machine edge is counted and emitted
#: as a structured event (severity scales with how bad the new state is).
TRANSITIONS_METRIC = "perfsight_health_transitions_total"

_TRANSITION_SEVERITY = {HEALTHY: obs.INFO, DEGRADED: obs.WARNING, DEAD: obs.ERROR}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the per-agent health state machine.

    ``degraded_after`` consecutive failed syncs move a HEALTHY agent to
    DEGRADED; ``dead_after`` consecutive failures to DEAD; and
    ``recover_after`` consecutive successful syncs bring any non-HEALTHY
    agent back to HEALTHY.
    """

    degraded_after: int = 1
    dead_after: int = 3
    recover_after: int = 1

    def __post_init__(self) -> None:
        if self.degraded_after < 1:
            raise ValueError(f"degraded_after must be >= 1: {self.degraded_after!r}")
        if self.dead_after < self.degraded_after:
            raise ValueError(
                f"dead_after ({self.dead_after!r}) must be >= degraded_after "
                f"({self.degraded_after!r})"
            )
        if self.recover_after < 1:
            raise ValueError(f"recover_after must be >= 1: {self.recover_after!r}")


class AgentHealth:
    """Tracks one agent's collection-path health at the controller."""

    def __init__(
        self, policy: Optional[HealthPolicy] = None, name: str = ""
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        #: The tracked agent/machine, for events (optional but useful).
        self.name = name
        # Concurrent refresh workers may record outcomes for the same
        # agent (a retried sync racing a health probe); the state machine
        # itself stays consistent under that.
        self._lock = threading.Lock()
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.total_failures = 0
        self.total_successes = 0
        self.last_error: Optional[BaseException] = None
        #: Every (from_state, to_state) edge taken, in order.
        self.transitions: List[Tuple[str, str]] = []

    # -- event ingestion ---------------------------------------------------------

    def record_success(self) -> str:
        """One successful collection exchange; returns the new state."""
        with self._lock:
            self.total_successes += 1
            self.consecutive_failures = 0
            self.consecutive_successes += 1
            if (
                self.state != HEALTHY
                and self.consecutive_successes >= self.policy.recover_after
            ):
                self._transition(HEALTHY)
            return self.state

    def record_failure(self, error: Optional[BaseException] = None) -> str:
        """One failed collection exchange; returns the new state."""
        with self._lock:
            self.total_failures += 1
            self.consecutive_successes = 0
            self.consecutive_failures += 1
            if error is not None:
                self.last_error = error
            if self.consecutive_failures >= self.policy.dead_after:
                if self.state != DEAD:
                    self._transition(DEAD)
            elif self.consecutive_failures >= self.policy.degraded_after:
                if self.state == HEALTHY:
                    self._transition(DEGRADED)
            return self.state

    def _transition(self, new_state: str) -> None:
        self.transitions.append((self.state, new_state))
        obs.counter(TRANSITIONS_METRIC, to=new_state)
        obs.event(
            "health.transition",
            _TRANSITION_SEVERITY[new_state],
            agent=self.name,
            from_state=self.state,
            to_state=new_state,
            consecutive_failures=self.consecutive_failures,
        )
        self.state = new_state

    # -- views -------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return self.state == HEALTHY

    def state_sequence(self) -> List[str]:
        """The states visited so far, starting from HEALTHY."""
        return [HEALTHY] + [to for _, to in self.transitions]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AgentHealth(state={self.state!r}, "
            f"fails={self.consecutive_failures}, oks={self.consecutive_successes})"
        )


@dataclass(frozen=True)
class DataQuality:
    """Staleness/quality annotation attached to mirror-served answers.

    ``state`` is the serving agent's health state at answer time;
    ``last_snapshot_ts`` the newest counter timestamp the mirror holds
    for that machine (None for an empty mirror); ``age_s`` how far that
    timestamp lags the caller-supplied reference time, when one was
    given.  ``resets`` counts counter re-baselines the mirror performed
    (agent restarts observed through the data).
    """

    machine: str
    state: str
    consecutive_failures: int = 0
    failed_syncs: int = 0
    last_snapshot_ts: Optional[float] = None
    age_s: Optional[float] = None
    resets: int = 0

    @property
    def stale(self) -> bool:
        """True when the answer may lag the dataplane's true state."""
        return self.state != HEALTHY

    @property
    def degraded(self) -> bool:
        """Alias of :attr:`stale` — verdict-level naming."""
        return self.stale

    def describe(self) -> str:
        if not self.stale:
            return f"{self.machine}: fresh ({self.state})"
        age = f", data {self.age_s:.3f}s old" if self.age_s is not None else ""
        return (
            f"{self.machine}: STALE ({self.state}, "
            f"{self.consecutive_failures} consecutive failed syncs{age})"
        )
