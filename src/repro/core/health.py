"""Agent health tracking for the collection plane.

PerfSight's controller depends on a fleet of per-server agents reached
over a management network; both the agents and the network can fail
while the dataplane being diagnosed keeps running.  A diagnosis system
that dies with its own measurement path is useless exactly when it is
needed most, so the controller tracks a small per-agent health state
machine and keeps answering queries from its mirror stores — with an
explicit data-quality annotation — while an agent is unreachable.

States::

    HEALTHY --(degraded_after consecutive failed syncs)--> DEGRADED
    DEGRADED --(dead_after consecutive failed syncs)-----> DEAD
    DEGRADED/DEAD --(recover_after consecutive successes)-> HEALTHY

Thresholds are counted in *consecutive* collection attempts, not wall
time, so the machine behaves identically under simulated and real
clocks and under any refresh cadence.

The hierarchy's root tier tracks the same idea one level up, but in
*time* rather than attempts: a zone is expected to push a report every
heartbeat period, and the root judges liveness by how far the last
accepted report lags the deadline (:class:`ZoneHealth`)::

    HEALTHY --(no report for suspect_after heartbeats)--> SUSPECT
    SUSPECT --(no report for dead_after heartbeats)-----> DEAD
    any state --(a report arrives)----------------------> HEALTHY

Attempt counting would not work at the root: the root does not call
zones, zones call the root, so "consecutive failures" has no observer
there — absence of evidence is the only signal, and absence is
measured in heartbeats.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs

#: The three agent health states, in degradation order.
HEALTHY = "healthy"
DEGRADED = "degraded"
DEAD = "dead"

HEALTH_STATES = (HEALTHY, DEGRADED, DEAD)

#: Zone liveness adds SUSPECT between healthy and dead: a zone that
#: missed one heartbeat is probably slow, not gone — Dapper's two-phase
#: shape (cheap suspicion first, expensive recovery only on confirmed
#: death) applied to the control plane itself.
SUSPECT = "suspect"

ZONE_STATES = (HEALTHY, SUSPECT, DEAD)

_STATE_RANK = {state: rank for rank, state in enumerate(HEALTH_STATES)}


def count_states(states: Iterable[str]) -> Dict[str, int]:
    """Histogram of health states, every known state always present.

    The hierarchy's roll-up currency: a zone summarizes its shard as
    these three integers instead of forwarding per-agent objects, and
    the fleet tier adds histograms together.
    """
    counts = dict.fromkeys(HEALTH_STATES, 0)
    for state in states:
        counts[state] = counts.get(state, 0) + 1
    return counts


def merge_state_counts(parts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-zone state histograms into a fleet histogram."""
    total = dict.fromkeys(HEALTH_STATES, 0)
    for part in parts:
        for state, n in part.items():
            total[state] = total.get(state, 0) + n
    return total


def worst_state(states: Iterable[str]) -> str:
    """The most degraded state present (HEALTHY for an empty input).

    Unknown states rank worst: a roll-up must not report a fleet
    healthier than a tier it failed to understand.
    """
    worst = HEALTHY
    worst_rank = _STATE_RANK[worst]
    for state in states:
        rank = _STATE_RANK.get(state, len(HEALTH_STATES))
        if rank > worst_rank:
            worst, worst_rank = state, rank
    return worst

#: Self-observability: every state-machine edge is counted and emitted
#: as a structured event (severity scales with how bad the new state is).
TRANSITIONS_METRIC = "perfsight_health_transitions_total"

_TRANSITION_SEVERITY = {HEALTHY: obs.INFO, DEGRADED: obs.WARNING, DEAD: obs.ERROR}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the per-agent health state machine.

    ``degraded_after`` consecutive failed syncs move a HEALTHY agent to
    DEGRADED; ``dead_after`` consecutive failures to DEAD; and
    ``recover_after`` consecutive successful syncs bring any non-HEALTHY
    agent back to HEALTHY.
    """

    degraded_after: int = 1
    dead_after: int = 3
    recover_after: int = 1

    def __post_init__(self) -> None:
        if self.degraded_after < 1:
            raise ValueError(f"degraded_after must be >= 1: {self.degraded_after!r}")
        if self.dead_after < self.degraded_after:
            raise ValueError(
                f"dead_after ({self.dead_after!r}) must be >= degraded_after "
                f"({self.degraded_after!r})"
            )
        if self.recover_after < 1:
            raise ValueError(f"recover_after must be >= 1: {self.recover_after!r}")


class AgentHealth:
    """Tracks one agent's collection-path health at the controller."""

    def __init__(
        self, policy: Optional[HealthPolicy] = None, name: str = ""
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        #: The tracked agent/machine, for events (optional but useful).
        self.name = name
        # Concurrent refresh workers may record outcomes for the same
        # agent (a retried sync racing a health probe); the state machine
        # itself stays consistent under that.
        self._lock = threading.Lock()
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.total_failures = 0
        self.total_successes = 0
        self.last_error: Optional[BaseException] = None
        #: Every (from_state, to_state) edge taken, in order.
        self.transitions: List[Tuple[str, str]] = []

    # -- event ingestion ---------------------------------------------------------

    def record_success(self) -> str:
        """One successful collection exchange; returns the new state."""
        with self._lock:
            self.total_successes += 1
            self.consecutive_failures = 0
            self.consecutive_successes += 1
            if (
                self.state != HEALTHY
                and self.consecutive_successes >= self.policy.recover_after
            ):
                self._transition(HEALTHY)
            return self.state

    def record_failure(self, error: Optional[BaseException] = None) -> str:
        """One failed collection exchange; returns the new state."""
        with self._lock:
            self.total_failures += 1
            self.consecutive_successes = 0
            self.consecutive_failures += 1
            if error is not None:
                self.last_error = error
            if self.consecutive_failures >= self.policy.dead_after:
                if self.state != DEAD:
                    self._transition(DEAD)
            elif self.consecutive_failures >= self.policy.degraded_after:
                if self.state == HEALTHY:
                    self._transition(DEGRADED)
            return self.state

    def _transition(self, new_state: str) -> None:
        self.transitions.append((self.state, new_state))
        obs.counter(TRANSITIONS_METRIC, to=new_state)
        obs.event(
            "health.transition",
            _TRANSITION_SEVERITY[new_state],
            agent=self.name,
            from_state=self.state,
            to_state=new_state,
            consecutive_failures=self.consecutive_failures,
        )
        self.state = new_state

    # -- views -------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return self.state == HEALTHY

    def state_sequence(self) -> List[str]:
        """The states visited so far, starting from HEALTHY."""
        return [HEALTHY] + [to for _, to in self.transitions]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AgentHealth(state={self.state!r}, "
            f"fails={self.consecutive_failures}, oks={self.consecutive_successes})"
        )


@dataclass(frozen=True)
class DataQuality:
    """Staleness/quality annotation attached to mirror-served answers.

    ``state`` is the serving agent's health state at answer time;
    ``last_snapshot_ts`` the newest counter timestamp the mirror holds
    for that machine (None for an empty mirror); ``age_s`` how far that
    timestamp lags the caller-supplied reference time, when one was
    given.  ``resets`` counts counter re-baselines the mirror performed
    (agent restarts observed through the data).
    """

    machine: str
    state: str
    consecutive_failures: int = 0
    failed_syncs: int = 0
    last_snapshot_ts: Optional[float] = None
    age_s: Optional[float] = None
    resets: int = 0

    @property
    def stale(self) -> bool:
        """True when the answer may lag the dataplane's true state."""
        return self.state != HEALTHY

    @property
    def degraded(self) -> bool:
        """Alias of :attr:`stale` — verdict-level naming."""
        return self.stale

    def describe(self) -> str:
        if not self.stale:
            return f"{self.machine}: fresh ({self.state})"
        age = f", data {self.age_s:.3f}s old" if self.age_s is not None else ""
        return (
            f"{self.machine}: STALE ({self.state}, "
            f"{self.consecutive_failures} consecutive failed syncs{age})"
        )


# -- zone liveness (the root tier's view of its aggregators) ------------------

#: Self-observability names for the zone state machine.
ZONE_TRANSITIONS_METRIC = "perfsight_zone_health_transitions_total"
ZONE_LIVENESS_METRIC = "perfsight_fleet_zone_liveness_state"

#: Numeric encoding of zone liveness for the labelled root gauge —
#: same style as the wire circuit gauge (closed=0/half_open=1/open=2):
#: dashboards alert on ``> 0`` without parsing state strings.
ZONE_STATE_VALUES = {HEALTHY: 0.0, SUSPECT: 1.0, DEAD: 2.0}

_ZONE_SEVERITY = {HEALTHY: obs.INFO, SUSPECT: obs.WARNING, DEAD: obs.ERROR}

_ZONE_RANK = {state: rank for rank, state in enumerate(ZONE_STATES)}


@dataclass(frozen=True)
class ZoneHealthPolicy:
    """Deadlines of the per-zone liveness state machine at the root.

    A live zone pushes a report at least every ``heartbeat_s``.  A zone
    whose last report is older than ``suspect_after`` heartbeats is
    SUSPECT; older than ``dead_after`` heartbeats, DEAD.  The defaults
    (1 and 2 heartbeats) give the acceptance bound the failover plane
    is built around: a killed zone is detected within two heartbeat
    periods.
    """

    heartbeat_s: float = 1.0
    suspect_after: float = 1.0
    dead_after: float = 2.0

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive: {self.heartbeat_s!r}")
        if self.suspect_after <= 0:
            raise ValueError(
                f"suspect_after must be positive: {self.suspect_after!r}"
            )
        if self.dead_after < self.suspect_after:
            raise ValueError(
                f"dead_after ({self.dead_after!r}) must be >= suspect_after "
                f"({self.suspect_after!r})"
            )

    def state_for_age(self, age_s: float) -> str:
        """The liveness state implied by a report age (pure function)."""
        if age_s >= self.dead_after * self.heartbeat_s:
            return DEAD
        if age_s >= self.suspect_after * self.heartbeat_s:
            return SUSPECT
        return HEALTHY


class ZoneHealth:
    """Tracks one zone's liveness at the fleet root, by report age.

    Unlike :class:`AgentHealth` (attempt-counted, because the
    controller actively calls its agents), the root only *receives*:
    a zone that died simply stops pushing, so liveness is judged by
    comparing the last accepted report's arrival time against the
    heartbeat deadline.  ``record_report`` is the proof-of-life edge —
    any accepted report snaps the zone back to HEALTHY from any state;
    ``evaluate`` drives the age-based decay.
    """

    def __init__(
        self, policy: Optional[ZoneHealthPolicy] = None, name: str = ""
    ) -> None:
        self.policy = policy if policy is not None else ZoneHealthPolicy()
        self.name = name
        self._lock = threading.Lock()
        self.state = HEALTHY
        #: Arrival time of the last accepted report (None before any).
        self.last_report_ts: Optional[float] = None
        self.reports_seen = 0
        #: Every (from_state, to_state) edge taken, in order.
        self.transitions: List[Tuple[str, str]] = []

    def record_report(self, now: float) -> str:
        """An accepted report arrived at ``now``; returns the new state."""
        with self._lock:
            self.last_report_ts = now
            self.reports_seen += 1
            if self.state != HEALTHY:
                self._transition(HEALTHY)
            return self.state

    def evaluate(self, now: float) -> str:
        """Re-judge liveness against the deadline; returns the state.

        A zone that has never reported ages from its registration — the
        caller seeds ``last_report_ts`` via :meth:`arm` so a zone that
        registers and immediately dies is still detected.
        """
        with self._lock:
            if self.last_report_ts is None:
                return self.state
            implied = self.policy.state_for_age(max(0.0, now - self.last_report_ts))
            if implied != self.state:
                # Only decay here: recovery edges come exclusively from
                # record_report (evidence), never from re-evaluation.
                if _ZONE_RANK[implied] > _ZONE_RANK[self.state]:
                    self._transition(implied)
            return self.state

    def arm(self, now: float) -> None:
        """Start the liveness clock without counting a report.

        Called at registration (and reactivation) so the deadline is
        armed from the moment the root starts expecting heartbeats.
        """
        with self._lock:
            if self.last_report_ts is None or now > self.last_report_ts:
                self.last_report_ts = now

    def age_s(self, now: float) -> Optional[float]:
        """How far the last report lags ``now`` (None before any)."""
        with self._lock:
            if self.last_report_ts is None:
                return None
            return max(0.0, now - self.last_report_ts)

    def _transition(self, new_state: str) -> None:
        self.transitions.append((self.state, new_state))
        obs.counter(ZONE_TRANSITIONS_METRIC, to=new_state)
        obs.gauge(ZONE_LIVENESS_METRIC, ZONE_STATE_VALUES[new_state], zone=self.name)
        obs.event(
            "zone_health.transition",
            _ZONE_SEVERITY[new_state],
            zone=self.name,
            from_state=self.state,
            to_state=new_state,
        )
        self.state = new_state

    @property
    def healthy(self) -> bool:
        return self.state == HEALTHY

    @property
    def dead(self) -> bool:
        return self.state == DEAD

    def state_sequence(self) -> List[str]:
        """The states visited so far, starting from HEALTHY."""
        return [HEALTHY] + [to for _, to in self.transitions]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZoneHealth(zone={self.name!r}, state={self.state!r})"
