"""The Table-1 rule book: drop location -> resource in shortage.

Constructed exactly the way the paper describes (Section 5.1): run
experiments that exhaust each resource, record where packets drop, and
invert the mapping.  ``benchmarks/test_table1_rulebook.py`` re-runs that
construction against this table.

Two subtleties the paper calls out, preserved here:

* CPU and memory-bandwidth contention share the "TUN (aggregated)"
  symptom; the rule book returns both candidates plus the secondary
  signals (CPU utilization, NIC throughput) an operator combines to
  disambiguate.
* The same TUN location means *contention* when many VMs lose packets
  and a *VM bottleneck* when exactly one does — the spread test at the
  end of Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Resource identifiers.
CPU = "host-cpu"
MEMORY_SPACE = "memory-space"
MEMORY_BANDWIDTH = "memory-bandwidth"
INCOMING_BANDWIDTH = "incoming-bandwidth"
OUTGOING_BANDWIDTH = "outgoing-bandwidth"
VM_BOTTLENECK = "vm-bottleneck"


@dataclass(frozen=True)
class Verdict:
    """One diagnosis: the resource(s) a drop location implicates."""

    location_class: str
    resources: List[str]
    scope: str  # "shared" (contention) or "individual" (bottleneck)
    secondary_signals: List[str] = field(default_factory=list)

    def describe(self) -> str:
        kind = "contention" if self.scope == "shared" else "bottleneck"
        res = " or ".join(self.resources)
        return f"{kind}: {res} (symptom at {self.location_class})"


def classify_location(location: str) -> str:
    """Normalize a concrete drop location to its rule-book class."""
    if location.startswith("tun-"):
        return "tun"
    if location.startswith("vcpu_backlog"):
        return "vcpu_backlog"
    if location == "pcpu_backlog":
        return "pcpu_backlog"
    if location == "pnic":
        return "pnic"
    if location == "pnic_txq":
        return "pnic_txq"
    if ".sockbuf" in location:
        return "sockbuf"
    return location


class RuleBook:
    """Maps (drop-location class, VM spread) to resource verdicts."""

    def diagnose(
        self, location: str, vms_affected: Optional[int] = None
    ) -> Verdict:
        """Verdict for drops at ``location``.

        ``vms_affected`` — how many distinct VMs are losing packets at
        this location class (the contention/bottleneck spread test);
        ``None`` means unknown, treated as shared.
        """
        cls = classify_location(location)
        shared = vms_affected is None or vms_affected > 1
        if cls == "pnic":
            return Verdict(cls, [INCOMING_BANDWIDTH], "shared")
        if cls == "pnic_txq":
            return Verdict(cls, [OUTGOING_BANDWIDTH], "shared")
        if cls == "pcpu_backlog":
            return Verdict(
                cls,
                [OUTGOING_BANDWIDTH, MEMORY_SPACE],
                "shared",
                secondary_signals=[
                    "small average packet size at the enqueue implies a "
                    "packet-rate (backlog slots) shortage, not byte bandwidth",
                ],
            )
        if cls == "tun":
            if shared:
                return Verdict(
                    cls,
                    [CPU, MEMORY_BANDWIDTH],
                    "shared",
                    secondary_signals=[
                        "high host CPU utilization implicates CPU",
                        "high memory traffic with idle CPU implicates the memory bus",
                    ],
                )
            return Verdict(cls, [VM_BOTTLENECK], "individual")
        if cls in ("vcpu_backlog", "sockbuf"):
            if shared:
                # Guest-internal loss in *many* VMs at once means the
                # guests themselves are starved of a shared host
                # resource, same root causes as aggregated TUN loss.
                return Verdict(
                    cls,
                    [CPU, MEMORY_BANDWIDTH],
                    "shared",
                    secondary_signals=[
                        "co-occurring aggregated TUN drops corroborate host-level starvation",
                    ],
                )
            return Verdict(cls, [VM_BOTTLENECK], "individual")
        return Verdict(cls, [], "shared", ["unmapped location; extend the rule book"])

    def diagnose_all(self, drops_by_location: Dict[str, float]) -> List[Verdict]:
        """Verdicts for a machine-wide drop breakdown, worst class first.

        Per-VM locations (``tun-<vm>``) are aggregated into their class
        and the number of distinct VMs losing packets there becomes the
        contention/bottleneck spread test.
        """
        by_class: Dict[str, float] = {}
        vms_by_class: Dict[str, set] = {}
        exemplar: Dict[str, str] = {}
        for location, pkts in drops_by_location.items():
            if pkts <= 0:
                continue
            cls = classify_location(location)
            by_class[cls] = by_class.get(cls, 0.0) + pkts
            exemplar.setdefault(cls, location)
            if cls in ("tun", "vcpu_backlog", "sockbuf"):
                vms_by_class.setdefault(cls, set()).add(location)
        out: List[Verdict] = []
        for cls, pkts in sorted(by_class.items(), key=lambda kv: -kv[1]):
            spread = len(vms_by_class.get(cls, ())) or None
            out.append(self.diagnose(exemplar[cls], spread))
        return out
