"""PerfSight core: statistics gathering, agents, controller, diagnosis.

This package implements the paper's primary contribution (Sections 3-5 of
the IMC'15 paper): the element counter abstraction, per-element collection
channels, the per-server agent, the central controller with its vNet
registry, the utility query routines of Figure 6, the Table-1 rule book,
and the two diagnostic applications (Algorithms 1 and 2).
"""

from repro.core.counters import CounterOverheadModel, CounterSet, IOTimeCounter
from repro.core.health import (
    DEAD,
    DEGRADED,
    HEALTHY,
    AgentHealth,
    DataQuality,
    HealthPolicy,
)
from repro.core.records import StatRecord

__all__ = [
    "AgentHealth",
    "CounterOverheadModel",
    "CounterSet",
    "DEAD",
    "DEGRADED",
    "DataQuality",
    "HEALTHY",
    "HealthPolicy",
    "IOTimeCounter",
    "StatRecord",
]
