"""Trouble-ticket aggregation (Sections 2.3 and 7.4).

Diagnosis starts when "a tenant experiences performance problems and
submits trouble tickets".  The scalability discussion adds: "Cloud
operators can aggregate tenants' tickets to diagnose if they have
elements overlapping with each other" — when several tenants on the same
physical machine complain at once, one machine-level Algorithm-1 pass
answers all of them (a contention verdict), whereas a lone complaint
points at a per-tenant Algorithm-2 pass (bottleneck or propagation).

:class:`TicketQueue` holds the open tickets; :class:`TicketAggregator`
groups them by overlapping machines (via the placement registry) and
produces a diagnosis *plan* the operator console executes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.placement import Placement


@dataclass
class Ticket:
    """One tenant complaint."""

    ticket_id: str
    tenant_id: str
    complaint: str
    opened_at: float
    resolved: bool = False
    resolution: str = ""

    def resolve(self, resolution: str) -> None:
        self.resolved = True
        self.resolution = resolution


@dataclass
class DiagnosisStep:
    """One planned diagnosis action."""

    kind: str  # "machine_contention" | "tenant_root_cause"
    target: str  # machine name or tenant id
    tickets: List[Ticket] = field(default_factory=list)

    @property
    def tenant_ids(self) -> List[str]:
        return sorted({t.tenant_id for t in self.tickets})


class TicketQueue:
    """Open/resolved ticket bookkeeping."""

    def __init__(self) -> None:
        self._tickets: Dict[str, Ticket] = {}
        self._seq = itertools.count(1)

    def open(self, tenant_id: str, complaint: str, now: float = 0.0) -> Ticket:
        tid = f"ticket-{next(self._seq)}"
        ticket = Ticket(tid, tenant_id, complaint, now)
        self._tickets[tid] = ticket
        return ticket

    def get(self, ticket_id: str) -> Ticket:
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise KeyError(f"no ticket {ticket_id!r}") from None

    def open_tickets(self) -> List[Ticket]:
        return [t for t in self._tickets.values() if not t.resolved]

    def open_by_tenant(self) -> Dict[str, List[Ticket]]:
        out: Dict[str, List[Ticket]] = {}
        for t in self.open_tickets():
            out.setdefault(t.tenant_id, []).append(t)
        return out


class TicketAggregator:
    """Plans diagnosis passes from the open-ticket set.

    * A machine where VMs of **two or more complaining tenants** overlap
      gets one shared ``machine_contention`` step (Algorithm 1) covering
      all of their tickets — the Section-7.4 aggregation.
    * Every complaining tenant also keeps (or, if not covered by any
      shared machine, only gets) a ``tenant_root_cause`` step
      (Algorithm 2) unless a shared step already covers it and
      ``always_tenant_pass`` is off.
    """

    def __init__(self, placement: Placement, always_tenant_pass: bool = False):
        self.placement = placement
        self.always_tenant_pass = always_tenant_pass

    def plan(self, queue: TicketQueue) -> List[DiagnosisStep]:
        by_tenant = queue.open_by_tenant()
        if not by_tenant:
            return []

        machines_of: Dict[str, List[str]] = {}
        for tenant_id in by_tenant:
            machines = {
                self.placement.machine_of(vm)
                for vm in self.placement.vms_of_tenant(tenant_id)
            }
            for machine in machines:
                machines_of.setdefault(machine, []).append(tenant_id)

        steps: List[DiagnosisStep] = []
        covered: set = set()
        for machine in sorted(machines_of):
            tenants = sorted(machines_of[machine])
            if len(tenants) < 2:
                continue
            tickets = [t for tid in tenants for t in by_tenant[tid]]
            steps.append(
                DiagnosisStep("machine_contention", machine, tickets)
            )
            covered.update(tenants)

        for tenant_id in sorted(by_tenant):
            if tenant_id in covered and not self.always_tenant_pass:
                continue
            steps.append(
                DiagnosisStep("tenant_root_cause", tenant_id, by_tenant[tenant_id])
            )
        return steps

    def cost_estimate(self, queue: TicketQueue) -> Dict[str, int]:
        """Diagnosis passes planned vs the naive one-pass-per-ticket.

        This is the scalability win the paper points at: overlapping
        tenants share one machine-level pass.
        """
        steps = self.plan(queue)
        return {
            "planned_passes": len(steps),
            "naive_passes": len(queue.open_tickets()),
        }
