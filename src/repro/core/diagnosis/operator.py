"""Operator workflows (Section 7.3).

These are the management actions the paper walks through in the
multi-tenant experiment of Figures 13-14, packaged as an
``OperatorConsole`` over the controller + placement + live simulation
objects:

* :meth:`diagnose_machine` — run Algorithm 1 on one host;
* :meth:`diagnose_tenant` — run Algorithm 2 on one tenant's chain;
* :meth:`migrate_task` — move a contending workload off the host (the
  memory-intensive management task of Figure 14(b));
* :meth:`scale_out_vnic` — give a bottlenecked middlebox VM more vNIC
  capacity, standing in for "scale it out and reroute half the traffic"
  (capacity-equivalent, one VM instead of two — the aggregate behaviour
  Figure 14(c) measures is the tenant's total throughput).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import obs
from repro.cluster.placement import Placement
from repro.core.controller import Controller
from repro.core.diagnosis.contention import ContentionDetector
from repro.core.diagnosis.propagation import RootCauseLocator
from repro.core.diagnosis.report import ContentionReport, RootCauseReport


class OperatorConsole:
    """The cloud operator's handle on diagnosis + remediation."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        placement: Optional[Placement] = None,
        window_s: float = 1.0,
    ) -> None:
        self.controller = controller
        self.advance = advance
        self.placement = placement if placement is not None else Placement()
        self.contention = ContentionDetector(controller, advance, window_s=window_s)
        self.propagation = RootCauseLocator(controller, advance, window_s=window_s)
        self.actions_log: list = []

    # -- diagnosis ------------------------------------------------------------------

    def diagnose_machine(self, machine: str, window_s: Optional[float] = None) -> ContentionReport:
        report = self.contention.run(machine, window_s)
        self.actions_log.append(("diagnose_machine", machine))
        obs.event(
            "operator.action", action="diagnose_machine", machine=machine,
            confidence=report.confidence,
        )
        return report

    def diagnose_tenant(self, tenant_id: str, window_s: Optional[float] = None) -> RootCauseReport:
        report = self.propagation.run(tenant_id, window_s)
        self.actions_log.append(("diagnose_tenant", tenant_id))
        obs.event(
            "operator.action", action="diagnose_tenant", tenant=tenant_id,
            root_causes=",".join(report.root_causes),
        )
        return report

    # -- remediation -------------------------------------------------------------------

    def migrate_task(self, stopper: Callable[[], None], description: str = "") -> None:
        """Move a contending workload elsewhere.

        In the simulation "migrating away" means the workload stops
        claiming this host's resources; ``stopper`` is the workload's
        stop handle (e.g. ``MemoryHog.stop``).
        """
        stopper()
        self.actions_log.append(("migrate_task", description))
        obs.event(
            "operator.action", action="migrate_task", description=description
        )

    def migrate_vm(self, vm_id: str, new_machine: str) -> None:
        old = self.placement.migrate(vm_id, new_machine)
        self.actions_log.append(("migrate_vm", vm_id, old, new_machine))
        obs.event(
            "operator.action", action="migrate_vm", vm=vm_id,
            source=old, destination=new_machine,
        )

    def scale_out_vnic(self, vm, factor: float = 2.0) -> None:
        """Scale a bottleneck middlebox by adding capacity.

        Doubling the vNIC cap (and vCPU) is the capacity-equivalent of
        instantiating a second instance and splitting traffic.
        """
        if factor <= 1.0:
            raise ValueError(f"scale factor must exceed 1: {factor!r}")
        if vm.vnic_bps is not None:
            vm.set_vnic_bps(vm.vnic_bps * factor)
        vm.set_vcpu_cores(vm.vcpu.capacity_per_s * factor)
        self.actions_log.append(("scale_out", vm.vm_id, factor))
        obs.event("operator.action", action="scale_out", vm=vm.vm_id, factor=factor)
