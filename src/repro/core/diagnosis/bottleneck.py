"""Bottleneck-middlebox detection (Section 5.1, second half).

When a tenant complains about end-to-end performance, the operator:

1. builds a *suspicious set* of middleboxes with high resource
   utilization — degenerating to all of the tenant's middleboxes when no
   utilization stands out (the video-encoder problem: utilization does
   not equal workload);
2. uses the light-weight statistics to separate middleboxes facing
   *legitimate* issues — packet drops on their individual path, blocked
   I/O — from those that simply run hot by design.

A middlebox is confirmed as a bottleneck when the loss is confined to
its own VM's software datapath (TUN individual), or when it is the
Overloaded survivor of the propagation analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.controller import Controller
from repro.core.diagnosis.states import classify_state
from repro.core.records import StatRecord


class BottleneckDetector:
    """Confirms which suspicious middleboxes are real bottlenecks."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        window_s: float = 1.0,
        theta: float = 0.9,
    ) -> None:
        self.controller = controller
        self.advance = advance
        self.window_s = window_s
        self.theta = theta

    def run(
        self,
        tenant_id: str,
        suspicious: Optional[List[str]] = None,
        window_s: Optional[float] = None,
    ) -> Dict[str, Dict[str, object]]:
        """Evaluate the suspicious set; returns per-middlebox evidence.

        Each entry carries ``tun_drops`` (individual-path loss),
        ``cpu_bound`` (not Read/Write blocked while traffic flows) and
        the combined ``is_bottleneck`` confirmation.
        """
        window = window_s if window_s is not None else self.window_s
        vnet = self.controller.vnet(tenant_id)
        if suspicious is None:
            suspicious = [n.name for n in vnet.middleboxes()]

        attrs = ["inBytes", "inTime", "outBytes", "outTime", "capacity_bps"]
        before: Dict[str, StatRecord] = {}
        tun_before: Dict[str, StatRecord] = {}
        for name in suspicious:
            before[name] = self.controller.get_attr(tenant_id, name, attrs)
            tun_before[name] = self._tun_record(tenant_id, name)
        self.advance(window)

        out: Dict[str, Dict[str, object]] = {}
        for name in suspicious:
            after = self.controller.get_attr(tenant_id, name, attrs)
            tun_after = self._tun_record(tenant_id, name)
            capacity = after.get("capacity_bps", 0.0)
            state = None
            if capacity > 0:
                state = classify_state(
                    name, before[name], after, capacity, theta=self.theta
                )
            tun_drops = tun_after.get("drops") - tun_before[name].get("drops")
            cpu_bound = (
                state is not None
                and not state.read_blocked
                and not state.write_blocked
                and (after.get("inBytes") - before[name].get("inBytes")) > 0
            )
            out[name] = {
                "state": state,
                "tun_drops": tun_drops,
                "cpu_bound": cpu_bound,
                "is_bottleneck": tun_drops > 0 or cpu_bound,
            }
        return out

    def _tun_record(self, tenant_id: str, mb_name: str) -> StatRecord:
        """The TUN element stats for the middlebox's VM."""
        vnet = self.controller.vnet(tenant_id)
        node = vnet.middlebox(mb_name)
        agent = self.controller.agent_for(node.machine)
        tun_id = f"tun-{node.vm_id}@{node.machine}"
        return agent.query([tun_id])[0]
