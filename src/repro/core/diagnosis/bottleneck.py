"""Bottleneck-middlebox detection (Section 5.1, second half).

When a tenant complains about end-to-end performance, the operator:

1. builds a *suspicious set* of middleboxes with high resource
   utilization — degenerating to all of the tenant's middleboxes when no
   utilization stands out (the video-encoder problem: utilization does
   not equal workload);
2. uses the light-weight statistics to separate middleboxes facing
   *legitimate* issues — packet drops on their individual path, blocked
   I/O — from those that simply run hot by design.

A middlebox is confirmed as a bottleneck when the loss is confined to
its own VM's software datapath (TUN individual), or when it is the
Overloaded survivor of the propagation analysis.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.controller import Controller
from repro.core.counters import CounterWindow
from repro.core.diagnosis.report import (
    CONFIDENCE_DEGRADED,
    CONFIDENCE_FULL,
    CONFIDENCE_MISSING,
    DIAGNOSIS_RUNS_METRIC,
    DIAGNOSIS_RUNTIME_METRIC,
)
from repro.core.diagnosis.states import classify_window
from repro.core.store import StoreError


class BottleneckDetector:
    """Confirms which suspicious middleboxes are real bottlenecks."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        window_s: float = 1.0,
        theta: float = 0.9,
    ) -> None:
        self.controller = controller
        self.advance = advance
        self.window_s = window_s
        self.theta = theta

    def run(
        self,
        tenant_id: str,
        suspicious: Optional[List[str]] = None,
        window_s: Optional[float] = None,
    ) -> Dict[str, Dict[str, object]]:
        """Evaluate the suspicious set; returns per-middlebox evidence.

        Each entry carries ``tun_drops`` (individual-path loss),
        ``cpu_bound`` (not Read/Write blocked while traffic flows), the
        combined ``is_bottleneck`` confirmation, and a ``confidence``
        label: ``"full"`` over fresh counters, ``"degraded"`` when the
        serving agent was unhealthy over the window, ``"missing"`` when
        the mirror held no counters for the middlebox or its TUN (such
        entries are never confirmed as bottlenecks — absence of data is
        not absence of drops, so they stay unconfirmed but flagged).
        """
        wall0 = time.perf_counter()
        confidence = CONFIDENCE_FULL
        with obs.span("diagnosis.bottleneck", tenant=tenant_id) as sp:
            out = self._run(tenant_id, suspicious, window_s)
            confirmed = sorted(
                name for name, entry in out.items() if entry["is_bottleneck"]
            )
            confidences = {str(entry["confidence"]) for entry in out.values()}
            if CONFIDENCE_MISSING in confidences:
                confidence = CONFIDENCE_MISSING
            elif CONFIDENCE_DEGRADED in confidences:
                confidence = CONFIDENCE_DEGRADED
            sp.set("bottlenecks", ",".join(confirmed))
            sp.set("confidence", confidence)
            sp.set("evaluated", len(out))
        obs.observe(
            DIAGNOSIS_RUNTIME_METRIC, time.perf_counter() - wall0,
            algorithm="bottleneck",
        )
        obs.counter(
            DIAGNOSIS_RUNS_METRIC, algorithm="bottleneck", confidence=confidence
        )
        return out

    def _run(
        self,
        tenant_id: str,
        suspicious: Optional[List[str]],
        window_s: Optional[float],
    ) -> Dict[str, Dict[str, object]]:
        window = window_s if window_s is not None else self.window_s
        vnet = self.controller.vnet(tenant_id)
        if suspicious is None:
            suspicious = [n.name for n in vnet.middleboxes()]

        located = {name: vnet.locate(name) for name in suspicious}
        tuns = {name: self._tun_location(tenant_id, name) for name in suspicious}
        machines = sorted({machine for machine, _ in located.values()})

        for machine in machines:
            self.controller.refresh(machine)
        before = {}
        tun_before = {}
        for name in suspicious:
            try:
                machine, eid = located[name]
                before[name] = self.controller.mirror_latest(machine, eid)
                tun_machine, tun_id = tuns[name]
                tun_before[name] = self.controller.mirror_latest(tun_machine, tun_id)
            except (KeyError, StoreError):
                pass
        self.advance(window)
        for machine in machines:
            self.controller.refresh(machine)

        quality = {m: self.controller.data_quality(m) for m in machines}
        out: Dict[str, Dict[str, object]] = {}
        for name in suspicious:
            machine, eid = located[name]
            tun_machine, tun_id = tuns[name]
            try:
                win = CounterWindow(
                    start=before[name],
                    end=self.controller.mirror_latest(machine, eid),
                )
                tun_win = CounterWindow(
                    start=tun_before[name],
                    end=self.controller.mirror_latest(tun_machine, tun_id),
                )
            except (KeyError, StoreError):
                out[name] = {
                    "state": None,
                    "tun_drops": 0.0,
                    "cpu_bound": False,
                    "is_bottleneck": False,
                    "confidence": CONFIDENCE_MISSING,
                }
                continue
            capacity = win.end.get("capacity_bps", 0.0)
            state = None
            if capacity > 0:
                state = classify_window(win, capacity, theta=self.theta, name=name)
            tun_drops = tun_win.delta("drops")
            cpu_bound = (
                state is not None
                and not state.read_blocked
                and not state.write_blocked
                and win.delta("inBytes") > 0
            )
            stale = quality[machine].stale or quality[tun_machine].stale
            out[name] = {
                "state": state,
                "tun_drops": tun_drops,
                "cpu_bound": cpu_bound,
                "is_bottleneck": tun_drops > 0 or cpu_bound,
                "confidence": CONFIDENCE_DEGRADED if stale else CONFIDENCE_FULL,
            }
        return out

    def _tun_location(self, tenant_id: str, mb_name: str) -> Tuple[str, str]:
        """(machine, element_id) of the TUN device for the middlebox's VM."""
        node = self.controller.vnet(tenant_id).middlebox(mb_name)
        return node.machine, f"tun-{node.vm_id}@{node.machine}"
