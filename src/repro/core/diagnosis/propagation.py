"""Algorithm 2: locate the root-cause middlebox under propagation.

Observe each middlebox's ``inBytes/inTime/outBytes/outTime`` over a
:class:`CounterWindow` T wide (one delta-batched mirror refresh per
involved machine at each end — not a per-middlebox pull); classify
Read/WriteBlocked; then eliminate:

* a ReadBlocked middlebox and all its successors (they are starved by
  something upstream, not at fault themselves);
* a WriteBlocked middlebox and all its predecessors (they are throttled
  by something downstream).

What survives is the root cause set.  A survivor whose successors are
ReadBlocked is *Underloaded* (a slow source); one whose predecessors
are WriteBlocked is *Overloaded* (a slow consumer) — the labels of
Figure 7.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.cluster.topology import VirtualNetwork
from repro.core.controller import Controller
from repro.core.counters import CounterWindow
from repro.core.diagnosis.report import (
    CONFIDENCE_DEGRADED,
    CONFIDENCE_FULL,
    CONFIDENCE_MISSING,
    DIAGNOSIS_RUNS_METRIC,
    DIAGNOSIS_RUNTIME_METRIC,
    MiddleboxVerdict,
    RootCauseReport,
)
from repro.core.diagnosis.states import MiddleboxState, classify_window
from repro.core.store import StoreError

STAT_ATTRS = ["inBytes", "inTime", "outBytes", "outTime"]


class RootCauseLocator:
    """GetRootCause(tenant) per Algorithm 2."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        window_s: float = 1.0,
        theta: float = 0.9,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s!r}")
        self.controller = controller
        self.advance = advance
        self.window_s = window_s
        self.theta = theta

    def run(self, tenant_id: str, window_s: Optional[float] = None) -> RootCauseReport:
        """Classify, eliminate, label — on whatever data is available.

        A middlebox whose counters the mirror does not hold is excluded
        from the elimination pass and reported with a ``no-data``
        verdict; middleboxes served by an unhealthy agent keep their
        verdicts but at ``degraded`` confidence (the Read/WriteBlocked
        classification may rest on a stale window).
        """
        wall0 = time.perf_counter()
        confidence = CONFIDENCE_FULL
        with obs.span("diagnosis.propagation", tenant=tenant_id) as sp:
            report = self._run(tenant_id, window_s)
            confidence = (
                CONFIDENCE_DEGRADED if report.degraded else CONFIDENCE_FULL
            )
            # Verdict provenance: who was blamed and on what data.
            sp.set("root_causes", ",".join(report.root_causes))
            sp.set("confidence", confidence)
            sp.set("missing", len(report.missing))
        obs.observe(
            DIAGNOSIS_RUNTIME_METRIC, time.perf_counter() - wall0,
            algorithm="propagation",
        )
        obs.counter(
            DIAGNOSIS_RUNS_METRIC, algorithm="propagation", confidence=confidence
        )
        return report

    def _run(self, tenant_id: str, window_s: Optional[float]) -> RootCauseReport:
        window = window_s if window_s is not None else self.window_s
        vnet = self.controller.vnet(tenant_id)
        names = [node.name for node in vnet.middleboxes()]
        located = {name: vnet.locate(name) for name in names}
        machines = sorted({machine for machine, _ in located.values()})

        for machine in machines:
            self.controller.refresh(machine)
        starts = {}
        missing: List[str] = []
        for name, (machine, eid) in located.items():
            try:
                starts[name] = self.controller.mirror_latest(machine, eid)
            except (KeyError, StoreError):
                missing.append(name)
        self.advance(window)
        for machine in machines:
            self.controller.refresh(machine)

        states: Dict[str, MiddleboxState] = {}
        for name in names:
            if name in missing:
                continue
            machine, eid = located[name]
            try:
                end = self.controller.mirror_latest(machine, eid)
            except (KeyError, StoreError):
                missing.append(name)
                continue
            win = CounterWindow(start=starts[name], end=end)
            capacity = win.end.get("capacity_bps", 0.0)
            if capacity <= 0:
                raise RuntimeError(
                    f"middlebox {name!r} does not expose its vNIC capacity"
                )
            states[name] = classify_window(win, capacity, theta=self.theta, name=name)

        candidates = {name for name in names if name in states}
        for name, state in states.items():
            if state.read_blocked:
                candidates.discard(name)
                candidates.difference_update(vnet.successors_closure(name))
            if state.write_blocked:
                candidates.discard(name)
                candidates.difference_update(vnet.predecessors_closure(name))

        quality = {m: self.controller.data_quality(m) for m in machines}
        verdicts: List[MiddleboxVerdict] = []
        for name in names:
            machine, _ = located[name]
            if name not in states:
                verdicts.append(
                    MiddleboxVerdict(name, None, False, "no-data", CONFIDENCE_MISSING)
                )
                continue
            state = states[name]
            is_root = name in candidates
            label = self._label(vnet, states, name, is_root)
            confidence = (
                CONFIDENCE_DEGRADED if quality[machine].stale else CONFIDENCE_FULL
            )
            verdicts.append(MiddleboxVerdict(name, state, is_root, label, confidence))
        return RootCauseReport(
            tenant_id=tenant_id,
            window_s=window,
            verdicts=verdicts,
            data_quality=quality,
            missing=sorted(missing),
        )

    @staticmethod
    def _label(
        vnet: VirtualNetwork,
        states: Dict[str, MiddleboxState],
        name: str,
        is_root: bool,
    ) -> str:
        if not is_root:
            return "eliminated"
        node = vnet.middlebox(name)
        succ_read_blocked = [
            s for s in node.successors if s in states and states[s].read_blocked
        ]
        pred_write_blocked = [
            p for p in node.predecessors if p in states and states[p].write_blocked
        ]
        if pred_write_blocked:
            return "overloaded"
        if succ_read_blocked:
            return "underloaded"
        return "unclear"
