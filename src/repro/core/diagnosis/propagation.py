"""Algorithm 2: locate the root-cause middlebox under propagation.

Fetch each middlebox's ``inBytes/inTime/outBytes/outTime`` twice, T
apart; classify Read/WriteBlocked; then eliminate:

* a ReadBlocked middlebox and all its successors (they are starved by
  something upstream, not at fault themselves);
* a WriteBlocked middlebox and all its predecessors (they are throttled
  by something downstream).

What survives is the root cause set.  A survivor whose successors are
ReadBlocked is *Underloaded* (a slow source); one whose predecessors
are WriteBlocked is *Overloaded* (a slow consumer) — the labels of
Figure 7.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.topology import VirtualNetwork
from repro.core.controller import Controller
from repro.core.diagnosis.report import MiddleboxVerdict, RootCauseReport
from repro.core.diagnosis.states import MiddleboxState, classify_state

STAT_ATTRS = ["inBytes", "inTime", "outBytes", "outTime"]


class RootCauseLocator:
    """GetRootCause(tenant) per Algorithm 2."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        window_s: float = 1.0,
        theta: float = 0.9,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s!r}")
        self.controller = controller
        self.advance = advance
        self.window_s = window_s
        self.theta = theta

    def run(self, tenant_id: str, window_s: Optional[float] = None) -> RootCauseReport:
        window = window_s if window_s is not None else self.window_s
        vnet = self.controller.vnet(tenant_id)
        names = [node.name for node in vnet.middleboxes()]

        before = {
            name: self.controller.get_attr(tenant_id, name, STAT_ATTRS)
            for name in names
        }
        self.advance(window)
        after = {
            name: self.controller.get_attr(tenant_id, name, STAT_ATTRS)
            for name in names
        }

        states: Dict[str, MiddleboxState] = {}
        for name in names:
            capacity = self.controller.get_attr(
                tenant_id, name, ["capacity_bps"]
            ).get("capacity_bps", 0.0)
            if capacity <= 0:
                raise RuntimeError(
                    f"middlebox {name!r} does not expose its vNIC capacity"
                )
            states[name] = classify_state(
                name, before[name], after[name], capacity, theta=self.theta
            )

        candidates = set(names)
        for name in names:
            state = states[name]
            if state.read_blocked:
                candidates.discard(name)
                candidates.difference_update(vnet.successors_closure(name))
            if state.write_blocked:
                candidates.discard(name)
                candidates.difference_update(vnet.predecessors_closure(name))

        verdicts: List[MiddleboxVerdict] = []
        for name in names:
            state = states[name]
            is_root = name in candidates
            label = self._label(vnet, states, name, is_root)
            verdicts.append(MiddleboxVerdict(name, state, is_root, label))
        return RootCauseReport(tenant_id=tenant_id, window_s=window, verdicts=verdicts)

    @staticmethod
    def _label(
        vnet: VirtualNetwork,
        states: Dict[str, MiddleboxState],
        name: str,
        is_root: bool,
    ) -> str:
        if not is_root:
            return "eliminated"
        node = vnet.middlebox(name)
        succ_read_blocked = [
            s for s in node.successors if s in states and states[s].read_blocked
        ]
        pred_write_blocked = [
            p for p in node.predecessors if p in states and states[p].write_blocked
        ]
        if pred_write_blocked:
            return "overloaded"
        if succ_read_blocked:
            return "underloaded"
        return "unclear"
