"""Middlebox state classification (Section 5.2).

The paper's conditions, from two counter samples over interval T:

    ReadBlocked  iff  (t2_i - t1_i) > (b2_i - b1_i) / C
    WriteBlocked iff  (t2_o - t1_o) > (b2_o - b1_o) / C

i.e. the average per-I/O-call throughput fell below the vNIC capacity C,
which can only happen if the calls spent time blocked (memory copies run
orders of magnitude faster than C).

We add a guard band ``theta`` (default 0.9): a middlebox relaying at
exactly link rate measures b/t marginally above C with ideal counters
and marginally around it with noisy ones, so the effective test is
``b/t < theta * C``.  theta=1.0 recovers the paper's literal condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.counters import CounterWindow
from repro.core.records import StatRecord


@dataclass(frozen=True)
class MiddleboxState:
    """One middlebox's inferred state over a sampling window."""

    name: str
    read_blocked: bool
    write_blocked: bool
    in_rate_bps: Optional[float]  # b_in/t_in; None if no input activity
    out_rate_bps: Optional[float]  # b_out/t_out; None if no output activity
    capacity_bps: float

    @property
    def blocked(self) -> bool:
        return self.read_blocked or self.write_blocked

    def describe(self) -> str:
        tags = []
        if self.read_blocked:
            tags.append("ReadBlocked")
        if self.write_blocked:
            tags.append("WriteBlocked")
        if not tags:
            tags.append("unblocked")
        def fmt(rate):
            return "N/A" if rate is None else f"{rate / 1e6:.1f}Mbps"
        return (
            f"{self.name}: {'+'.join(tags)} "
            f"(b/ti={fmt(self.in_rate_bps)}, b/to={fmt(self.out_rate_bps)}, "
            f"C={self.capacity_bps / 1e6:.0f}Mbps)"
        )


def _rate(d_bytes: float, d_time: float) -> Optional[float]:
    if d_time <= 0 and d_bytes <= 0:
        return None
    if d_time <= 0:
        return float("inf")
    return 8.0 * d_bytes / d_time


def classify_state(
    name: str,
    before: StatRecord,
    after: StatRecord,
    capacity_bps: float,
    theta: float = 0.9,
) -> MiddleboxState:
    """Classify one middlebox from a pair of counter samples."""
    return _classify_deltas(
        name,
        after.get("inBytes") - before.get("inBytes"),
        after.get("inTime") - before.get("inTime"),
        after.get("outBytes") - before.get("outBytes"),
        after.get("outTime") - before.get("outTime"),
        capacity_bps,
        theta,
    )


def classify_window(
    window: CounterWindow,
    capacity_bps: float,
    theta: float = 0.9,
    name: Optional[str] = None,
) -> MiddleboxState:
    """Classify one middlebox from a mirrored counter window."""
    return _classify_deltas(
        name if name is not None else window.element_id,
        window.delta("inBytes"),
        window.delta("inTime"),
        window.delta("outBytes"),
        window.delta("outTime"),
        capacity_bps,
        theta,
    )


def _classify_deltas(
    name: str,
    d_bi: float,
    d_ti: float,
    d_bo: float,
    d_to: float,
    capacity_bps: float,
    theta: float,
) -> MiddleboxState:
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive: {capacity_bps!r}")
    if not 0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1]: {theta!r}")
    in_rate = _rate(d_bi, d_ti)
    out_rate = _rate(d_bo, d_to)
    threshold = theta * capacity_bps
    read_blocked = in_rate is not None and in_rate < threshold
    write_blocked = out_rate is not None and out_rate < threshold
    return MiddleboxState(
        name=name,
        read_blocked=read_blocked,
        write_blocked=write_blocked,
        in_rate_bps=in_rate,
        out_rate_bps=out_rate,
        capacity_bps=capacity_bps,
    )
