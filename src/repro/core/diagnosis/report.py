"""Diagnosis report structures.

Every report carries degraded-mode metadata: when the counters a
verdict depends on are stale (the serving agent's health is not
HEALTHY) or missing (never mirrored), the verdict is flagged rather
than silently presented as fully trusted — a diagnosis system must keep
producing answers when its own measurement path degrades, but it must
say so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.diagnosis.states import MiddleboxState
from repro.core.health import DataQuality
from repro.core.rulebook import Verdict

#: Verdict confidence labels used across the diagnosis reports.
CONFIDENCE_FULL = "full"
CONFIDENCE_DEGRADED = "degraded"
CONFIDENCE_MISSING = "missing"

#: Self-observability names shared by the diagnosis algorithms: every
#: run is counted by (algorithm, confidence) and its wall-clock runtime
#: lands in one histogram per algorithm — the per-algorithm cost
#: surface the paper's §6 evaluation prices.
DIAGNOSIS_RUNS_METRIC = "perfsight_diagnosis_runs_total"
DIAGNOSIS_RUNTIME_METRIC = "perfsight_diagnosis_runtime_seconds"


@dataclass(frozen=True)
class ElementLoss:
    """One element's loss over the diagnosis window (Algorithm 1 row)."""

    element_id: str
    machine: str
    loss_pkts: float
    drops_by_location: Dict[str, float] = field(default_factory=dict)
    drops_by_flow: Dict[str, float] = field(default_factory=dict)


@dataclass
class ContentionReport:
    """Algorithm 1 output: loss-ranked elements + rule-book verdicts."""

    machine: str
    window_s: float
    ranked: List[ElementLoss]
    verdicts: List[Verdict]
    #: Section-5.1 operator step, automated: when the verdict is the
    #: ambiguous {CPU, memory-bandwidth} pair, host utilization gauges
    #: pick one (None when unambiguous or indistinguishable).
    disambiguated: Optional[str] = None
    #: Quality of the data the diagnosis ran over; None when the
    #: controller predates health tracking (in-process tests).
    data_quality: Optional[DataQuality] = None
    #: Stack elements the mirror held no counters for (skipped, not
    #: silently treated as loss-free).
    missing_elements: List[str] = field(default_factory=list)
    #: "full" when every input was fresh; "degraded" when verdicts rest
    #: on stale or partial counters.
    confidence: str = CONFIDENCE_FULL

    @property
    def degraded(self) -> bool:
        return self.confidence != CONFIDENCE_FULL

    @property
    def worst(self) -> Optional[ElementLoss]:
        return self.ranked[0] if self.ranked else None

    def summary(self) -> str:
        lines = [f"Contention/bottleneck report for {self.machine} ({self.window_s}s):"]
        if self.degraded:
            detail = (
                self.data_quality.describe()
                if self.data_quality is not None
                else "partial data"
            )
            lines.append(f"  !! DEGRADED confidence: {detail}")
            if self.missing_elements:
                lines.append(
                    "  !! no counters for: " + ", ".join(self.missing_elements)
                )
        for el in self.ranked[:5]:
            locs = ", ".join(
                f"{loc}={pkts:.0f}" for loc, pkts in sorted(
                    el.drops_by_location.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"  {el.element_id}: loss={el.loss_pkts:.0f} [{locs}]")
        for verdict in self.verdicts:
            lines.append(f"  -> {verdict.describe()}")
        if self.disambiguated:
            lines.append(f"  -> host gauges implicate: {self.disambiguated}")
        return "\n".join(lines)


@dataclass
class FleetDiagnosis:
    """Merged Algorithm-1 output across a fleet of machines.

    Produced by ``Controller.diagnose_fleet``: one
    :class:`ContentionReport` per machine, all measuring the *same*
    interval (the scans share a single time advance), plus the merged
    views a cluster operator asks first — which machine is losing the
    most, and which verdicts rest on degraded data.
    """

    window_s: float
    reports: Dict[str, ContentionReport]
    wall_s: float = 0.0
    #: Peak concurrent scan workers observed during the fan-out.
    peak_workers: int = 1

    @property
    def machines(self) -> List[str]:
        return sorted(self.reports)

    def report_for(self, machine: str) -> ContentionReport:
        try:
            return self.reports[machine]
        except KeyError:
            raise KeyError(f"no diagnosis for machine {machine!r}") from None

    @property
    def degraded_machines(self) -> List[str]:
        """Machines whose verdicts rest on stale or partial counters."""
        return sorted(m for m, r in self.reports.items() if r.degraded)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_machines)

    @property
    def loss_by_machine(self) -> Dict[str, float]:
        """Total ranked packet loss per machine over the shared window."""
        return {
            m: sum(el.loss_pkts for el in r.ranked)
            for m, r in self.reports.items()
        }

    @property
    def worst_machine(self) -> Optional[str]:
        """The machine losing the most packets (None for an empty fleet)."""
        losses = self.loss_by_machine
        if not losses:
            return None
        return max(sorted(losses), key=lambda m: losses[m])

    @property
    def verdicts(self) -> List[Tuple[str, Verdict]]:
        """Every (machine, verdict) pair, machines in sorted order."""
        return [(m, v) for m in self.machines for v in self.reports[m].verdicts]

    def summary(self) -> str:
        lines = [
            f"Fleet diagnosis over {len(self.reports)} machine(s) "
            f"({self.window_s}s window):"
        ]
        if self.degraded:
            lines.append(
                "  !! DEGRADED on: " + ", ".join(self.degraded_machines)
            )
        losses = self.loss_by_machine
        for machine in sorted(losses, key=lambda m: -losses[m]):
            report = self.reports[machine]
            verdicts = "; ".join(v.describe() for v in report.verdicts)
            lines.append(
                f"  {machine}: loss={losses[machine]:.0f}"
                + (f" -> {verdicts}" if verdicts else " (no verdicts)")
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class MiddleboxVerdict:
    """One middlebox's role in a propagation diagnosis."""

    name: str
    #: None when the middlebox's counters were unavailable (its machine's
    #: mirror held nothing for it) — the verdict then carries
    #: ``confidence == "missing"``.
    state: Optional[MiddleboxState]
    is_root_cause: bool
    label: str  # "overloaded" | "underloaded" | "eliminated" | "unclear" | "no-data"
    #: "full" for fresh counters, "degraded" when the serving agent was
    #: unhealthy over the window, "missing" when there were none at all.
    confidence: str = CONFIDENCE_FULL


@dataclass
class RootCauseReport:
    """Algorithm 2 output."""

    tenant_id: str
    window_s: float
    verdicts: List[MiddleboxVerdict]
    #: Per-machine quality of the mirrors the diagnosis read from.
    data_quality: Dict[str, DataQuality] = field(default_factory=dict)
    #: Middleboxes that could not be classified for lack of counters.
    missing: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.missing) or any(
            v.confidence != CONFIDENCE_FULL for v in self.verdicts
        )

    @property
    def root_causes(self) -> List[str]:
        return [v.name for v in self.verdicts if v.is_root_cause]

    def verdict(self, name: str) -> MiddleboxVerdict:
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(f"no verdict for middlebox {name!r}")

    def summary(self) -> str:
        lines = [f"Root-cause report for tenant {self.tenant_id} ({self.window_s}s):"]
        if self.degraded:
            stale = [q.describe() for q in self.data_quality.values() if q.stale]
            detail = "; ".join(stale) if stale else "partial data"
            lines.append(f"  !! DEGRADED confidence: {detail}")
        for v in self.verdicts:
            marker = "**ROOT CAUSE**" if v.is_root_cause else v.label
            if v.confidence != CONFIDENCE_FULL:
                marker += f", {v.confidence}"
            described = (
                v.state.describe() if v.state is not None else f"{v.name}: no data"
            )
            lines.append(f"  {described}  [{marker}]")
        return "\n".join(lines)
