"""Diagnosis report structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.diagnosis.states import MiddleboxState
from repro.core.rulebook import Verdict


@dataclass(frozen=True)
class ElementLoss:
    """One element's loss over the diagnosis window (Algorithm 1 row)."""

    element_id: str
    machine: str
    loss_pkts: float
    drops_by_location: Dict[str, float] = field(default_factory=dict)
    drops_by_flow: Dict[str, float] = field(default_factory=dict)


@dataclass
class ContentionReport:
    """Algorithm 1 output: loss-ranked elements + rule-book verdicts."""

    machine: str
    window_s: float
    ranked: List[ElementLoss]
    verdicts: List[Verdict]
    #: Section-5.1 operator step, automated: when the verdict is the
    #: ambiguous {CPU, memory-bandwidth} pair, host utilization gauges
    #: pick one (None when unambiguous or indistinguishable).
    disambiguated: Optional[str] = None

    @property
    def worst(self) -> Optional[ElementLoss]:
        return self.ranked[0] if self.ranked else None

    def summary(self) -> str:
        lines = [f"Contention/bottleneck report for {self.machine} ({self.window_s}s):"]
        for el in self.ranked[:5]:
            locs = ", ".join(
                f"{loc}={pkts:.0f}" for loc, pkts in sorted(
                    el.drops_by_location.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"  {el.element_id}: loss={el.loss_pkts:.0f} [{locs}]")
        for verdict in self.verdicts:
            lines.append(f"  -> {verdict.describe()}")
        if self.disambiguated:
            lines.append(f"  -> host gauges implicate: {self.disambiguated}")
        return "\n".join(lines)


@dataclass(frozen=True)
class MiddleboxVerdict:
    """One middlebox's role in a propagation diagnosis."""

    name: str
    state: MiddleboxState
    is_root_cause: bool
    label: str  # "overloaded" | "underloaded" | "eliminated" | "unclear"


@dataclass
class RootCauseReport:
    """Algorithm 2 output."""

    tenant_id: str
    window_s: float
    verdicts: List[MiddleboxVerdict]

    @property
    def root_causes(self) -> List[str]:
        return [v.name for v in self.verdicts if v.is_root_cause]

    def verdict(self, name: str) -> MiddleboxVerdict:
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(f"no verdict for middlebox {name!r}")

    def summary(self) -> str:
        lines = [f"Root-cause report for tenant {self.tenant_id} ({self.window_s}s):"]
        for v in self.verdicts:
            marker = "**ROOT CAUSE**" if v.is_root_cause else v.label
            lines.append(f"  {v.state.describe()}  [{marker}]")
        return "\n".join(lines)
