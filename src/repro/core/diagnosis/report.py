"""Diagnosis report structures.

Every report carries degraded-mode metadata: when the counters a
verdict depends on are stale (the serving agent's health is not
HEALTHY) or missing (never mirrored), the verdict is flagged rather
than silently presented as fully trusted — a diagnosis system must keep
producing answers when its own measurement path degrades, but it must
say so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.diagnosis.states import MiddleboxState
from repro.core.health import (
    DEAD,
    HEALTHY,
    DataQuality,
    count_states,
    merge_state_counts,
    worst_state,
)
from repro.core.rulebook import Verdict
from repro.core.sketches import QuantileSketch, SpaceSavingTopK

#: Verdict confidence labels used across the diagnosis reports.
CONFIDENCE_FULL = "full"
CONFIDENCE_DEGRADED = "degraded"
CONFIDENCE_MISSING = "missing"

#: Self-observability names shared by the diagnosis algorithms: every
#: run is counted by (algorithm, confidence) and its wall-clock runtime
#: lands in one histogram per algorithm — the per-algorithm cost
#: surface the paper's §6 evaluation prices.
DIAGNOSIS_RUNS_METRIC = "perfsight_diagnosis_runs_total"
DIAGNOSIS_RUNTIME_METRIC = "perfsight_diagnosis_runtime_seconds"


@dataclass(frozen=True)
class ElementLoss:
    """One element's loss over the diagnosis window (Algorithm 1 row)."""

    element_id: str
    machine: str
    loss_pkts: float
    drops_by_location: Dict[str, float] = field(default_factory=dict)
    drops_by_flow: Dict[str, float] = field(default_factory=dict)


@dataclass
class ContentionReport:
    """Algorithm 1 output: loss-ranked elements + rule-book verdicts."""

    machine: str
    window_s: float
    ranked: List[ElementLoss]
    verdicts: List[Verdict]
    #: Section-5.1 operator step, automated: when the verdict is the
    #: ambiguous {CPU, memory-bandwidth} pair, host utilization gauges
    #: pick one (None when unambiguous or indistinguishable).
    disambiguated: Optional[str] = None
    #: Quality of the data the diagnosis ran over; None when the
    #: controller predates health tracking (in-process tests).
    data_quality: Optional[DataQuality] = None
    #: Stack elements the mirror held no counters for (skipped, not
    #: silently treated as loss-free).
    missing_elements: List[str] = field(default_factory=list)
    #: "full" when every input was fresh; "degraded" when verdicts rest
    #: on stale or partial counters.
    confidence: str = CONFIDENCE_FULL

    @property
    def degraded(self) -> bool:
        return self.confidence != CONFIDENCE_FULL

    @property
    def worst(self) -> Optional[ElementLoss]:
        return self.ranked[0] if self.ranked else None

    def summary(self) -> str:
        lines = [f"Contention/bottleneck report for {self.machine} ({self.window_s}s):"]
        if self.degraded:
            detail = (
                self.data_quality.describe()
                if self.data_quality is not None
                else "partial data"
            )
            lines.append(f"  !! DEGRADED confidence: {detail}")
            if self.missing_elements:
                lines.append(
                    "  !! no counters for: " + ", ".join(self.missing_elements)
                )
        for el in self.ranked[:5]:
            locs = ", ".join(
                f"{loc}={pkts:.0f}" for loc, pkts in sorted(
                    el.drops_by_location.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"  {el.element_id}: loss={el.loss_pkts:.0f} [{locs}]")
        for verdict in self.verdicts:
            lines.append(f"  -> {verdict.describe()}")
        if self.disambiguated:
            lines.append(f"  -> host gauges implicate: {self.disambiguated}")
        return "\n".join(lines)


@dataclass
class FleetDiagnosis:
    """Merged Algorithm-1 output across a fleet of machines.

    Produced by ``Controller.diagnose_fleet``: one
    :class:`ContentionReport` per machine, all measuring the *same*
    interval (the scans share a single time advance), plus the merged
    views a cluster operator asks first — which machine is losing the
    most, and which verdicts rest on degraded data.
    """

    window_s: float
    reports: Dict[str, ContentionReport]
    wall_s: float = 0.0
    #: Peak concurrent scan workers observed during the fan-out.
    peak_workers: int = 1
    #: Merge scratch attached by ``Controller.diagnose_fleet``: the
    #: merged views below are then served from buffers the controller
    #: reuses across scan rounds instead of being rebuilt per access.
    #: Valid while this diagnosis is the buffers' current owner; a
    #: superseded diagnosis transparently falls back to recomputing.
    buffers: Optional["FleetMergeBuffers"] = field(
        default=None, repr=False, compare=False
    )

    def _merged(self) -> Optional["FleetMergeBuffers"]:
        buf = self.buffers
        return buf if buf is not None and buf.owner is self else None

    @property
    def machines(self) -> List[str]:
        buf = self._merged()
        return buf.machines if buf is not None else sorted(self.reports)

    def report_for(self, machine: str) -> ContentionReport:
        try:
            return self.reports[machine]
        except KeyError:
            raise KeyError(f"no diagnosis for machine {machine!r}") from None

    @property
    def degraded_machines(self) -> List[str]:
        """Machines whose verdicts rest on stale or partial counters."""
        buf = self._merged()
        if buf is not None:
            return buf.degraded
        return sorted(m for m, r in self.reports.items() if r.degraded)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_machines)

    @property
    def loss_by_machine(self) -> Dict[str, float]:
        """Total ranked packet loss per machine over the shared window."""
        buf = self._merged()
        if buf is not None:
            return buf.loss
        return {
            m: sum(el.loss_pkts for el in r.ranked)
            for m, r in self.reports.items()
        }

    @property
    def worst_machine(self) -> Optional[str]:
        """The machine losing the most packets (None for an empty fleet)."""
        losses = self.loss_by_machine
        if not losses:
            return None
        return max(sorted(losses), key=lambda m: losses[m])

    @property
    def verdicts(self) -> List[Tuple[str, Verdict]]:
        """Every (machine, verdict) pair, machines in sorted order."""
        buf = self._merged()
        if buf is not None:
            return buf.verdicts
        return [(m, v) for m in self.machines for v in self.reports[m].verdicts]

    def summary(self) -> str:
        lines = [
            f"Fleet diagnosis over {len(self.reports)} machine(s) "
            f"({self.window_s}s window):"
        ]
        if self.degraded:
            lines.append(
                "  !! DEGRADED on: " + ", ".join(self.degraded_machines)
            )
        losses = self.loss_by_machine
        for machine in sorted(losses, key=lambda m: -losses[m]):
            report = self.reports[machine]
            verdicts = "; ".join(v.describe() for v in report.verdicts)
            lines.append(
                f"  {machine}: loss={losses[machine]:.0f}"
                + (f" -> {verdicts}" if verdicts else " (no verdicts)")
            )
        return "\n".join(lines)


class FleetMergeBuffers:
    """Reusable merge scratch for repeated fleet scans.

    ``diagnose_fleet`` runs continuously in a control loop, and the
    merged views (machine order, per-machine loss, flattened verdict
    pairs) were being rebuilt from scratch on every property access of
    every round.  This object bounds those allocations: the controller
    keeps one instance across rounds and ``merge`` refills the same
    containers in place — per-machine verdict row buffers are kept
    keyed by machine and cleared/extended rather than reallocated, so
    steady-state scans of a stable fleet allocate no new merge lists.

    Ownership: ``merge`` stamps the diagnosis it merged as ``owner``.
    Views handed to a diagnosis are live references into the buffers;
    once a later round reuses them, the superseded diagnosis detects
    the ownership change and recomputes from its own reports instead of
    reading another round's data.
    """

    def __init__(self) -> None:
        self.owner: Optional[FleetDiagnosis] = None
        self.rounds = 0
        self.machines: List[str] = []
        self.degraded: List[str] = []
        self.loss: Dict[str, float] = {}
        self.verdicts: List[Tuple[str, Verdict]] = []
        # machine -> its (machine, verdict) rows, reused across rounds.
        self._rows: Dict[str, List[Tuple[str, Verdict]]] = {}

    def merge(self, diagnosis: FleetDiagnosis) -> FleetDiagnosis:
        """Merge ``diagnosis.reports`` into the reused buffers."""
        reports = diagnosis.reports
        self.rounds += 1
        self.machines.clear()
        self.machines.extend(sorted(reports))
        self.degraded.clear()
        self.loss.clear()
        self.verdicts.clear()
        for gone in [m for m in self._rows if m not in reports]:
            del self._rows[gone]
        for machine in self.machines:
            report = reports[machine]
            if report.degraded:
                self.degraded.append(machine)
            self.loss[machine] = sum(el.loss_pkts for el in report.ranked)
            rows = self._rows.get(machine)
            if rows is None:
                rows = self._rows[machine] = []
            rows.clear()
            rows.extend((machine, v) for v in report.verdicts)
            self.verdicts.extend(rows)
        self.owner = diagnosis
        diagnosis.buffers = self
        return diagnosis


# -- hierarchy roll-ups ---------------------------------------------------------
#
# What crosses the zone -> fleet wire.  A ZoneReport is O(machines in
# the shard) *scalars* — loss totals, Fig-6 rates, health states,
# verdict tuples — never time series, so the root tier aggregates a
# whole fleet without materializing any per-machine mirror.


def _verdict_to_wire(verdict: Verdict) -> List[Any]:
    return [
        verdict.location_class,
        list(verdict.resources),
        verdict.scope,
        list(verdict.secondary_signals),
    ]


def _verdict_from_wire(row: Any) -> Verdict:
    if not isinstance(row, (list, tuple)) or len(row) != 4:
        raise ValueError(f"malformed wire verdict: {row!r}")
    location_class, resources, scope, signals = row
    return Verdict(
        str(location_class),
        [str(r) for r in resources],
        str(scope),
        [str(s) for s in signals],
    )


@dataclass(frozen=True)
class MachineSummary:
    """One machine's scalar summary inside a :class:`ZoneReport`."""

    machine: str
    health: str = HEALTHY
    confidence: str = CONFIDENCE_FULL
    loss_pkts: float = 0.0
    throughput_pps: float = 0.0
    pkt_loss_rate: float = 0.0
    avg_pkt_size: float = 0.0
    elements: int = 0
    missing_elements: int = 0
    verdicts: Tuple[Verdict, ...] = ()
    #: Age of the machine's freshest mirror sample at roll-up time, in
    #: seconds.  0.0 when unknown (pre-streaming producers) — the wire
    #: format defaults keep old peers readable.
    age_s: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.confidence != CONFIDENCE_FULL

    def to_wire(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "health": self.health,
            "confidence": self.confidence,
            "loss_pkts": self.loss_pkts,
            "throughput_pps": self.throughput_pps,
            "pkt_loss_rate": self.pkt_loss_rate,
            "avg_pkt_size": self.avg_pkt_size,
            "elements": self.elements,
            "missing_elements": self.missing_elements,
            "verdicts": [_verdict_to_wire(v) for v in self.verdicts],
            "age_s": self.age_s,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "MachineSummary":
        return cls(
            machine=str(payload["machine"]),
            health=str(payload.get("health", HEALTHY)),
            confidence=str(payload.get("confidence", CONFIDENCE_FULL)),
            loss_pkts=float(payload.get("loss_pkts", 0.0)),
            throughput_pps=float(payload.get("throughput_pps", 0.0)),
            pkt_loss_rate=float(payload.get("pkt_loss_rate", 0.0)),
            avg_pkt_size=float(payload.get("avg_pkt_size", 0.0)),
            elements=int(payload.get("elements", 0)),
            missing_elements=int(payload.get("missing_elements", 0)),
            verdicts=tuple(
                _verdict_from_wire(v) for v in payload.get("verdicts", ())
            ),
            age_s=float(payload.get("age_s", 0.0)),
        )


#: Tracked heavy hitters per zone sketch.  The root's merged view can
#: therefore answer "top droppers" for the whole fleet from O(zones × k)
#: state instead of O(machines).
DEFAULT_TOPK = 10


@dataclass
class ZoneAggregates:
    """Sketch-backed shard aggregates riding a :class:`ZoneReport`.

    Bounded-memory stand-ins for the per-machine scans the root used
    to do: ``top_droppers`` space-saves machine loss totals over the
    report window, ``loss_rate`` histograms the shard's per-machine
    packet-loss-rate distribution.  Both merge across zones (exactly,
    since shards are disjoint) and pack flat for the ``bin1`` wire.
    """

    top_droppers: SpaceSavingTopK = field(
        default_factory=lambda: SpaceSavingTopK(DEFAULT_TOPK)
    )
    loss_rate: QuantileSketch = field(default_factory=QuantileSketch)

    @classmethod
    def from_summaries(
        cls, summaries: Mapping[str, "MachineSummary"], k: int = DEFAULT_TOPK
    ) -> "ZoneAggregates":
        agg = cls(top_droppers=SpaceSavingTopK(k))
        for machine in sorted(summaries):
            summary = summaries[machine]
            if summary.loss_pkts > 0:
                agg.top_droppers.add(machine, summary.loss_pkts)
            agg.loss_rate.add(max(0.0, summary.pkt_loss_rate))
        return agg

    def merge(self, other: "ZoneAggregates") -> "ZoneAggregates":
        self.top_droppers.merge(other.top_droppers)
        self.loss_rate.merge(other.loss_rate)
        return self

    def copy(self) -> "ZoneAggregates":
        return ZoneAggregates(
            top_droppers=self.top_droppers.copy(),
            loss_rate=self.loss_rate.copy(),
        )

    def nbytes(self) -> int:
        return self.top_droppers.nbytes() + self.loss_rate.nbytes()

    def to_wire(self) -> Dict[str, Any]:
        return {
            "topk": self.top_droppers.to_wire(),
            "loss_rate": self.loss_rate.to_wire(),
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "ZoneAggregates":
        return cls(
            top_droppers=SpaceSavingTopK.from_wire(payload["topk"]),
            loss_rate=QuantileSketch.from_wire(payload["loss_rate"]),
        )


@dataclass
class ZoneReport:
    """One zone's roll-up of its machine shard, pushed to the root.

    ``seq`` increases monotonically per zone; the root treats a report
    with ``seq <= last seen`` as a retry replay and drops it, which is
    what makes OP_ZONE_REPORT idempotent under the wire-retry policy.
    """

    zone: str
    seq: int
    window_s: float
    machines: Dict[str, MachineSummary] = field(default_factory=dict)
    generated_ts: float = 0.0
    #: Sketch-backed shard aggregates; None for pre-sketch producers
    #: (old peers stay readable — the wire defaults are additive).
    aggregates: Optional[ZoneAggregates] = None

    # -- zone-level aggregates (what the root reads most) -----------------

    @property
    def machine_names(self) -> List[str]:
        return sorted(self.machines)

    @property
    def total_loss_pkts(self) -> float:
        return sum(s.loss_pkts for s in self.machines.values())

    @property
    def throughput_pps(self) -> float:
        return sum(s.throughput_pps for s in self.machines.values())

    @property
    def avg_pkt_size(self) -> float:
        """Throughput-weighted mean packet size across the shard."""
        weight = sum(
            s.throughput_pps for s in self.machines.values() if s.avg_pkt_size > 0
        )
        if weight <= 0:
            return 0.0
        return (
            sum(
                s.avg_pkt_size * s.throughput_pps
                for s in self.machines.values()
                if s.avg_pkt_size > 0
            )
            / weight
        )

    @property
    def health_counts(self) -> Dict[str, int]:
        return count_states(s.health for s in self.machines.values())

    @property
    def worst_health(self) -> str:
        return worst_state(s.health for s in self.machines.values())

    @property
    def degraded_machines(self) -> List[str]:
        return sorted(m for m, s in self.machines.items() if s.degraded)

    @property
    def verdicts(self) -> List[Tuple[str, Verdict]]:
        return [
            (m, v) for m in self.machine_names for v in self.machines[m].verdicts
        ]

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        wire = {
            "zone": self.zone,
            "seq": self.seq,
            "window_s": self.window_s,
            "generated_ts": self.generated_ts,
            "machines": [
                self.machines[m].to_wire() for m in self.machine_names
            ],
        }
        if self.aggregates is not None:
            wire["aggregates"] = self.aggregates.to_wire()
        return wire

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "ZoneReport":
        summaries = [
            MachineSummary.from_wire(row) for row in payload.get("machines", ())
        ]
        raw_agg = payload.get("aggregates")
        return cls(
            zone=str(payload["zone"]),
            seq=int(payload["seq"]),
            window_s=float(payload.get("window_s", 0.0)),
            machines={s.machine: s for s in summaries},
            generated_ts=float(payload.get("generated_ts", 0.0)),
            aggregates=(
                ZoneAggregates.from_wire(raw_agg) if raw_agg else None
            ),
        )


@dataclass(frozen=True)
class ZoneQuality:
    """Liveness/staleness annotation for one zone's slice of a roll-up.

    The root's answer to "how much should I trust this zone's data":
    ``state`` is the zone's liveness state at merge time, ``age_s`` how
    far its last accepted report lags the merge (None before any
    report), ``active`` whether the zone currently owns a shard on the
    ring (False while failed over).  ``stale`` flags any non-HEALTHY
    zone; ``zone_down`` the zones whose reports were *excluded* from
    the merged views — a DEAD or evicted zone's machines are being
    re-homed, so its last report describes a shard it no longer owns.
    """

    zone: str
    state: str = HEALTHY
    active: bool = True
    age_s: Optional[float] = None
    last_seq: int = 0

    @property
    def stale(self) -> bool:
        """True when the zone's data may lag the fleet's true state."""
        return self.state != HEALTHY

    @property
    def zone_down(self) -> bool:
        """True when the zone's report is excluded from the merge."""
        return self.state == DEAD or not self.active

    def describe(self) -> str:
        if self.zone_down:
            age = f", last report {self.age_s:.3f}s ago" if self.age_s is not None else ""
            return f"{self.zone}: DOWN ({self.state}{age})"
        if self.stale:
            age = f", {self.age_s:.3f}s stale" if self.age_s is not None else ""
            return f"{self.zone}: STALE ({self.state}{age})"
        return f"{self.zone}: fresh ({self.state})"


@dataclass
class FleetRollup:
    """The root tier's fleet-wide merge of the latest zone reports.

    Holds one :class:`ZoneReport` per zone — scalars only.  The merged
    views mirror :class:`FleetDiagnosis` so tests can assert the
    hierarchy reaches the same verdicts as a flat controller.

    ``zone_quality`` carries the root's liveness verdict per zone:
    zones flagged ``zone_down`` contributed *no* report to ``zones``
    (their machines are being re-homed and would double-count against
    the survivors' reports); zones merely ``stale`` are merged but
    annotated, so an operator reading the roll-up knows exactly which
    numbers may lag.
    """

    window_s: float
    zones: Dict[str, ZoneReport] = field(default_factory=dict)
    zone_quality: Dict[str, ZoneQuality] = field(default_factory=dict)

    @property
    def stale_zones(self) -> List[str]:
        """Zones merged with non-fresh data (annotated, not hidden)."""
        return sorted(
            z for z, q in self.zone_quality.items() if q.stale and not q.zone_down
        )

    @property
    def down_zones(self) -> List[str]:
        """Zones excluded from the merge (dead or evicted from the ring)."""
        return sorted(z for z, q in self.zone_quality.items() if q.zone_down)

    @property
    def zone_names(self) -> List[str]:
        return sorted(self.zones)

    @property
    def machines(self) -> List[str]:
        return sorted(m for z in self.zones.values() for m in z.machines)

    def summary_for(self, machine: str) -> MachineSummary:
        for zone in self.zones.values():
            if machine in zone.machines:
                return zone.machines[machine]
        raise KeyError(f"no zone reported machine {machine!r}")

    @property
    def loss_by_machine(self) -> Dict[str, float]:
        return {
            m: zone.machines[m].loss_pkts
            for zone in self.zones.values()
            for m in zone.machines
        }

    @property
    def aggregates(self) -> Optional[ZoneAggregates]:
        """The zones' sketch aggregates merged fleet-wide.

        O(zones × sketch size) — never touches per-machine summaries.
        Exact under disjoint shards; None when no merged zone carried
        aggregates (pre-sketch producers).
        """
        merged: Optional[ZoneAggregates] = None
        for zone in self.zone_names:
            agg = self.zones[zone].aggregates
            if agg is None:
                continue
            merged = agg.copy() if merged is None else merged.merge(agg)
        return merged

    def top_droppers(self, n: int = 5) -> List[Tuple[str, float]]:
        """Heaviest-loss machines fleet-wide, from the merged sketches."""
        agg = self.aggregates
        if agg is None:
            return []
        return [(m, cnt) for m, cnt, _err in agg.top_droppers.top(n)]

    def loss_rate_quantile(self, q: float) -> Optional[float]:
        """Fleet loss-rate quantile from the merged sketches (or None)."""
        agg = self.aggregates
        if agg is None:
            return None
        return agg.loss_rate.quantile(q)

    @property
    def worst_machine(self) -> Optional[str]:
        losses = self.loss_by_machine
        if not losses:
            return None
        return max(sorted(losses), key=lambda m: losses[m])

    @property
    def verdicts(self) -> List[Tuple[str, Verdict]]:
        """Every (machine, verdict) pair, machines in fleet-sorted order."""
        pairs: List[Tuple[str, Verdict]] = []
        for machine in self.machines:
            pairs.extend(
                (machine, v) for v in self.summary_for(machine).verdicts
            )
        return pairs

    @property
    def degraded_machines(self) -> List[str]:
        return sorted(
            m for z in self.zones.values() for m in z.degraded_machines
        )

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_machines)

    @property
    def health_counts(self) -> Dict[str, int]:
        return merge_state_counts(z.health_counts for z in self.zones.values())

    @property
    def worst_health(self) -> str:
        return worst_state(z.worst_health for z in self.zones.values())

    @property
    def throughput_pps(self) -> float:
        return sum(z.throughput_pps for z in self.zones.values())

    @property
    def total_loss_pkts(self) -> float:
        return sum(z.total_loss_pkts for z in self.zones.values())

    def summary(self) -> str:
        lines = [
            f"Fleet roll-up over {len(self.zones)} zone(s), "
            f"{len(self.machines)} machine(s) ({self.window_s}s window):"
        ]
        counts = self.health_counts
        lines.append(
            "  health: "
            + ", ".join(f"{state}={n}" for state, n in counts.items() if n)
        )
        for zone in self.down_zones:
            lines.append(f"  !! ZONE DOWN: {self.zone_quality[zone].describe()}")
        for zone in self.stale_zones:
            lines.append(f"  !! ZONE STALE: {self.zone_quality[zone].describe()}")
        if self.degraded:
            lines.append("  !! DEGRADED on: " + ", ".join(self.degraded_machines))
        losses = self.loss_by_machine
        for machine in sorted(losses, key=lambda m: -losses[m]):
            if losses[machine] <= 0:
                continue
            verdicts = "; ".join(
                v.describe() for v in self.summary_for(machine).verdicts
            )
            lines.append(
                f"  {machine}: loss={losses[machine]:.0f}"
                + (f" -> {verdicts}" if verdicts else " (no verdicts)")
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class MiddleboxVerdict:
    """One middlebox's role in a propagation diagnosis."""

    name: str
    #: None when the middlebox's counters were unavailable (its machine's
    #: mirror held nothing for it) — the verdict then carries
    #: ``confidence == "missing"``.
    state: Optional[MiddleboxState]
    is_root_cause: bool
    label: str  # "overloaded" | "underloaded" | "eliminated" | "unclear" | "no-data"
    #: "full" for fresh counters, "degraded" when the serving agent was
    #: unhealthy over the window, "missing" when there were none at all.
    confidence: str = CONFIDENCE_FULL


@dataclass
class RootCauseReport:
    """Algorithm 2 output."""

    tenant_id: str
    window_s: float
    verdicts: List[MiddleboxVerdict]
    #: Per-machine quality of the mirrors the diagnosis read from.
    data_quality: Dict[str, DataQuality] = field(default_factory=dict)
    #: Middleboxes that could not be classified for lack of counters.
    missing: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.missing) or any(
            v.confidence != CONFIDENCE_FULL for v in self.verdicts
        )

    @property
    def root_causes(self) -> List[str]:
        return [v.name for v in self.verdicts if v.is_root_cause]

    def verdict(self, name: str) -> MiddleboxVerdict:
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(f"no verdict for middlebox {name!r}")

    def summary(self) -> str:
        lines = [f"Root-cause report for tenant {self.tenant_id} ({self.window_s}s):"]
        if self.degraded:
            stale = [q.describe() for q in self.data_quality.values() if q.stale]
            detail = "; ".join(stale) if stale else "partial data"
            lines.append(f"  !! DEGRADED confidence: {detail}")
        for v in self.verdicts:
            marker = "**ROOT CAUSE**" if v.is_root_cause else v.label
            if v.confidence != CONFIDENCE_FULL:
                marker += f", {v.confidence}"
            described = (
                v.state.describe() if v.state is not None else f"{v.name}: no data"
            )
            lines.append(f"  {described}  [{marker}]")
        return "\n".join(lines)
