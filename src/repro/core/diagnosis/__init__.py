"""Diagnostic applications built on the controller interfaces (Section 5).

* :mod:`contention` — Algorithm 1: rank virtualization-stack elements by
  packet loss, map the top locations through the Table-1 rule book, and
  split contention from single-VM bottlenecks by loss spread.
* :mod:`propagation` — Algorithm 2: classify chained middleboxes as
  Read/WriteBlocked from their I/O-time counters and eliminate blocked
  chains to isolate the root cause.
* :mod:`bottleneck` — the Section-5.1 bottleneck-middlebox detector
  (suspicious set by utilization, confirmed by light-weight statistics).
* :mod:`operator` — the Section-7.3 operator workflows (migrate, scale
  out) driving the above.
"""

from repro.core.diagnosis.bottleneck import BottleneckDetector
from repro.core.diagnosis.contention import ContentionDetector
from repro.core.diagnosis.propagation import RootCauseLocator
from repro.core.diagnosis.report import (
    ContentionReport,
    ElementLoss,
    MiddleboxVerdict,
    RootCauseReport,
)
from repro.core.diagnosis.states import MiddleboxState, classify_state

__all__ = [
    "BottleneckDetector",
    "ContentionDetector",
    "ContentionReport",
    "ElementLoss",
    "MiddleboxState",
    "MiddleboxVerdict",
    "RootCauseLocator",
    "RootCauseReport",
    "classify_state",
]
