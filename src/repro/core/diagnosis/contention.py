"""Algorithm 1: detect contention and bottleneck locations.

For every element in a machine's virtualization stack, observe a
:class:`CounterWindow` T seconds wide (two mirror refreshes bracketing
the interval — one delta-batched exchange each, not a per-element
pull), compute the element's packet loss (growth of in-minus-out,
exactly the paper's GetPktLoss), sort descending, and map the observed
drop locations through the Table-1 rule book.  Whether the loss is
spread across VMs (contention) or confined to one VM's path
(bottleneck) comes from the per-VM drop locations and the per-flow
attribution the buffers keep.

Cost is linear in the number of elements, as the paper notes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.core.controller import COLLECTION_ERRORS, Controller
from repro.core.counters import CounterSnapshot, CounterWindow
from repro.core.diagnosis.report import (
    CONFIDENCE_DEGRADED,
    CONFIDENCE_FULL,
    DIAGNOSIS_RUNS_METRIC,
    DIAGNOSIS_RUNTIME_METRIC,
    ContentionReport,
    ElementLoss,
)
from repro.core.rulebook import RuleBook
from repro.core.store import StoreError


@dataclass
class ContentionScan:
    """The window-start half of one machine's Algorithm-1 scan.

    Produced by :meth:`ContentionDetector.begin`, consumed by
    :meth:`ContentionDetector.finish`.  Splitting the scan at the window
    boundary is what lets a fleet diagnosis share ONE ``advance`` across
    machines: every machine's begin runs (concurrently) before time
    moves, then time moves once, then every finish runs — so all the
    per-machine windows measure the same interval.
    """

    machine: str
    window_s: float
    ids: List[str]
    starts: Dict[str, CounterSnapshot] = field(default_factory=dict)
    missing: List[str] = field(default_factory=list)
    #: ``time.perf_counter()`` at begin, for the runtime histogram.
    started_at: float = 0.0


class ContentionDetector:
    """FindContentionAndMiddlebox() over one machine's stack."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        rulebook: Optional[RuleBook] = None,
        window_s: float = 1.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s!r}")
        self.controller = controller
        self.advance = advance
        self.rulebook = rulebook if rulebook is not None else RuleBook()
        self.window_s = window_s

    def _stack_element_ids(self, machine_name: str) -> List[str]:
        agent = self.controller.agent_for(machine_name)
        stack_lister = getattr(agent, "stack_element_ids", None)
        if stack_lister is not None:
            try:
                return stack_lister()
            except COLLECTION_ERRORS:
                # The agent is unreachable; analyze whatever elements the
                # mirror already holds.  That loses the stack scoping (apps
                # rank alongside stack elements) but keeps the diagnosis
                # running — the report is marked degraded via the machine's
                # health state anyway.
                return self.controller.mirror_for(machine_name).store.element_ids()
        # Fall back to the machine walk for in-process agents.
        machine = getattr(agent, "machine", None)
        if machine is None:
            raise RuntimeError(
                f"agent for {machine_name!r} cannot enumerate stack elements"
            )
        return [e.name for e in machine.stack_elements()]

    def run(self, machine_name: str, window_s: Optional[float] = None) -> ContentionReport:
        """Refresh, wait, refresh, rank; returns the full report.

        Runs to completion on partial data: elements the mirror holds no
        counters for are skipped (and listed as missing), and when the
        machine's agent was unhealthy over the window — both ends served
        from an aging mirror — the whole report is marked degraded
        instead of presenting possibly stale verdicts as trusted.
        """
        with obs.span("diagnosis.contention", machine=machine_name) as sp:
            scan = self.begin(machine_name, window_s)
            self.advance(scan.window_s)
            report = self.finish(scan)
            self._annotate(sp, report)
        self._record_run(scan.started_at, report)
        return report

    # -- split-phase scan (fleet mode) -------------------------------------------

    def begin(
        self, machine_name: str, window_s: Optional[float] = None
    ) -> ContentionScan:
        """Open the diagnosis window: refresh and capture element starts.

        Thread-safe against other machines' begins — a fleet diagnosis
        fans begins out over a worker pool before advancing time once.
        """
        window = window_s if window_s is not None else self.window_s
        scan = ContentionScan(
            machine=machine_name,
            window_s=window,
            ids=self._stack_element_ids(machine_name),
            started_at=time.perf_counter(),
        )
        self.controller.refresh(machine_name)
        for eid in scan.ids:
            try:
                scan.starts[eid] = self.controller.mirror_latest(machine_name, eid)
            except (KeyError, StoreError):
                scan.missing.append(eid)
        return scan

    def finish(self, scan: ContentionScan) -> ContentionReport:
        """Close the window: refresh again, diff, rank, apply Table 1."""
        machine_name = scan.machine
        missing = list(scan.missing)
        self.controller.refresh(machine_name)

        ranked: List[ElementLoss] = []
        for eid in scan.ids:
            if eid in missing:
                continue
            try:
                end = self.controller.mirror_latest(machine_name, eid)
            except (KeyError, StoreError):
                missing.append(eid)
                continue
            ranked.append(self._element_loss(CounterWindow(scan.starts[eid], end)))
        ranked.sort(key=lambda el: -el.loss_pkts)

        drops_all: Dict[str, float] = {}
        for el in ranked:
            for loc, pkts in el.drops_by_location.items():
                drops_all[loc] = drops_all.get(loc, 0.0) + pkts
        verdicts = self.rulebook.diagnose_all(drops_all)
        quality = self.controller.data_quality(machine_name)
        degraded = quality.stale or bool(missing)
        report = ContentionReport(
            machine=machine_name,
            window_s=scan.window_s,
            ranked=ranked,
            verdicts=verdicts,
            data_quality=quality,
            missing_elements=missing,
            confidence=CONFIDENCE_DEGRADED if degraded else CONFIDENCE_FULL,
        )
        report.disambiguated = self._disambiguate(machine_name, verdicts)
        return report

    def finish_observed(self, scan: ContentionScan) -> ContentionReport:
        """:meth:`finish` wrapped in the per-machine span and metrics.

        Used by fleet mode, where begin and finish run in different
        worker threads so one span cannot bracket the whole scan; the
        runtime histogram still measures begin-to-finish via
        ``scan.started_at``.
        """
        with obs.span("diagnosis.contention", machine=scan.machine) as sp:
            report = self.finish(scan)
            self._annotate(sp, report)
        self._record_run(scan.started_at, report)
        return report

    @staticmethod
    def _annotate(sp, report: ContentionReport) -> None:
        sp.set("confidence", report.confidence)
        sp.set("verdicts", len(report.verdicts))
        if report.worst is not None:
            sp.set("worst", report.worst.element_id)

    @staticmethod
    def _record_run(started_at: float, report: ContentionReport) -> None:
        obs.observe(
            DIAGNOSIS_RUNTIME_METRIC, time.perf_counter() - started_at,
            algorithm="contention",
        )
        obs.counter(
            DIAGNOSIS_RUNS_METRIC,
            algorithm="contention", confidence=report.confidence,
        )

    def _disambiguate(self, machine_name: str, verdicts) -> Optional[str]:
        """Resolve a CPU-vs-memory-bandwidth verdict with host gauges.

        Section 5.1's operator step, automated: high CPU utilization
        implicates CPU; a busy memory bus with CPU headroom implicates
        the bus.  Returns the chosen resource id or None if nothing to
        disambiguate (or the agent cannot report host stats).
        """
        from repro.core.rulebook import CPU, MEMORY_BANDWIDTH

        ambiguous = [
            v for v in verdicts if set(v.resources) == {CPU, MEMORY_BANDWIDTH}
        ]
        if not ambiguous:
            return None
        agent = self.controller.agent_for(machine_name)
        host_stats = getattr(agent, "host_stats", None)
        if host_stats is None:
            return None
        stats = host_stats()
        cpu_util = stats.get("cpu_utilization")
        bus_util = stats.get("membus_utilization")
        # The bus gauge is decisive: a saturated memory bus explains the
        # TUN drops regardless of how busy the CPUs *look* (stalled
        # copies hold their CPU grants, so CPU utilization reads high
        # under bus contention too — the same trap as the busy-waiting
        # transcoder of Section 2.3).
        if bus_util >= 0.95:
            return MEMORY_BANDWIDTH
        if cpu_util >= 0.9:
            return CPU
        return None

    @staticmethod
    def _element_loss(window: CounterWindow) -> ElementLoss:
        return ElementLoss(
            element_id=window.element_id,
            machine=window.machine,
            loss_pkts=window.pkt_loss(),
            drops_by_location=window.drops_by_location(),
            drops_by_flow=window.drops_by_flow(),
        )
