"""Algorithm 1: detect contention and bottleneck locations.

For every element in a machine's virtualization stack, observe a
:class:`CounterWindow` T seconds wide (two mirror refreshes bracketing
the interval — one delta-batched exchange each, not a per-element
pull), compute the element's packet loss (growth of in-minus-out,
exactly the paper's GetPktLoss), sort descending, and map the observed
drop locations through the Table-1 rule book.  Whether the loss is
spread across VMs (contention) or confined to one VM's path
(bottleneck) comes from the per-VM drop locations and the per-flow
attribution the buffers keep.

Cost is linear in the number of elements, as the paper notes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.controller import Controller
from repro.core.counters import CounterWindow
from repro.core.diagnosis.report import ContentionReport, ElementLoss
from repro.core.rulebook import RuleBook


class ContentionDetector:
    """FindContentionAndMiddlebox() over one machine's stack."""

    def __init__(
        self,
        controller: Controller,
        advance: Callable[[float], None],
        rulebook: Optional[RuleBook] = None,
        window_s: float = 1.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s!r}")
        self.controller = controller
        self.advance = advance
        self.rulebook = rulebook if rulebook is not None else RuleBook()
        self.window_s = window_s

    def _stack_element_ids(self, machine_name: str) -> List[str]:
        agent = self.controller.agent_for(machine_name)
        stack_lister = getattr(agent, "stack_element_ids", None)
        if stack_lister is not None:
            return stack_lister()
        # Fall back to the machine walk for in-process agents.
        machine = getattr(agent, "machine", None)
        if machine is None:
            raise RuntimeError(
                f"agent for {machine_name!r} cannot enumerate stack elements"
            )
        return [e.name for e in machine.stack_elements()]

    def run(self, machine_name: str, window_s: Optional[float] = None) -> ContentionReport:
        """Refresh, wait, refresh, rank; returns the full report."""
        window = window_s if window_s is not None else self.window_s
        ids = self._stack_element_ids(machine_name)
        self.controller.refresh(machine_name)
        starts = {
            eid: self.controller.mirror_latest(machine_name, eid) for eid in ids
        }
        self.advance(window)
        self.controller.refresh(machine_name)

        ranked: List[ElementLoss] = []
        for eid in ids:
            win = CounterWindow(
                start=starts[eid],
                end=self.controller.mirror_latest(machine_name, eid),
            )
            ranked.append(self._element_loss(win))
        ranked.sort(key=lambda el: -el.loss_pkts)

        drops_all: Dict[str, float] = {}
        for el in ranked:
            for loc, pkts in el.drops_by_location.items():
                drops_all[loc] = drops_all.get(loc, 0.0) + pkts
        verdicts = self.rulebook.diagnose_all(drops_all)
        report = ContentionReport(
            machine=machine_name, window_s=window, ranked=ranked, verdicts=verdicts
        )
        report.disambiguated = self._disambiguate(machine_name, verdicts)
        return report

    def _disambiguate(self, machine_name: str, verdicts) -> Optional[str]:
        """Resolve a CPU-vs-memory-bandwidth verdict with host gauges.

        Section 5.1's operator step, automated: high CPU utilization
        implicates CPU; a busy memory bus with CPU headroom implicates
        the bus.  Returns the chosen resource id or None if nothing to
        disambiguate (or the agent cannot report host stats).
        """
        from repro.core.rulebook import CPU, MEMORY_BANDWIDTH

        ambiguous = [
            v for v in verdicts if set(v.resources) == {CPU, MEMORY_BANDWIDTH}
        ]
        if not ambiguous:
            return None
        agent = self.controller.agent_for(machine_name)
        host_stats = getattr(agent, "host_stats", None)
        if host_stats is None:
            return None
        stats = host_stats()
        cpu_util = stats.get("cpu_utilization")
        bus_util = stats.get("membus_utilization")
        # The bus gauge is decisive: a saturated memory bus explains the
        # TUN drops regardless of how busy the CPUs *look* (stalled
        # copies hold their CPU grants, so CPU utilization reads high
        # under bus contention too — the same trap as the busy-waiting
        # transcoder of Section 2.3).
        if bus_util >= 0.95:
            return MEMORY_BANDWIDTH
        if cpu_util >= 0.9:
            return CPU
        return None

    @staticmethod
    def _element_loss(window: CounterWindow) -> ElementLoss:
        return ElementLoss(
            element_id=window.element_id,
            machine=window.machine,
            loss_pkts=window.pkt_loss(),
            drops_by_location=window.drops_by_location(),
            drops_by_flow=window.drops_by_flow(),
        )
