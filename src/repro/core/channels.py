"""Element-agent collection channels (Sections 4.2 and 6).

The real PerfSight pulls counters over whichever access path each element
type offers: device files for ``net_device`` counters (pNIC, TUN),
``/proc`` for ``softnet_data`` (backlog/NAPI), the OpenFlow control
channel for per-rule vswitch stats, QEMU's instrumented logs, and a unix
socket into each middlebox process.  Figure 9 measures those paths:
device files cost ~2 ms, everything else completes within 500 us.

Each :class:`Channel` wraps one element with its kind's latency model
(lognormal around the measured median, drawn from the simulator RNG so
runs reproduce) and a CPU cost per read that the agent accumulates —
the per-poll cost whose product with poll frequency is Figure 16.

Real access paths fail: device files block on a wedged driver, /proc
reads race a restarting kernel thread, the OpenFlow channel drops, a
middlebox closes its stats socket.  Each channel therefore carries a
:class:`ChannelFaultPlan` — per-read probabilities of erroring, timing
out against the channel's deadline, or serving stale data — and counts
the faults it produced so the agent's health surface can report them.
Fault draws come from the same simulator RNG as latency draws, so a
faulty run reproduces exactly under the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro import obs
from repro.core.counters import CounterSnapshot
from repro.core.records import StatRecord
from repro.simnet.element import (
    KIND_GUEST,
    KIND_MIDDLEBOX,
    KIND_NETDEV,
    KIND_PROCFS,
    KIND_QEMU,
    KIND_VSWITCH,
)


@dataclass(frozen=True)
class ChannelSpec:
    """Latency/cost profile of one collection path."""

    #: Median response latency, seconds (Figure 9's per-channel level).
    median_latency_s: float
    #: Lognormal sigma of the latency spread.
    sigma: float
    #: Agent CPU consumed per read, seconds (drives Figure 16).
    cpu_cost_s: float
    #: Human-readable description of the real access path.
    access_path: str


#: Calibrated to Figure 9: Agent-pNIC and Agent-TUN around 2 ms (device
#: file open/read/parse), Agent-Backlog under 100 us (/proc), QEMU log
#: and middlebox/guest sockets within 500 us.
CHANNEL_SPECS: Dict[str, ChannelSpec] = {
    KIND_NETDEV: ChannelSpec(2.0e-3, 0.25, 5e-6, "net_device via device file"),
    KIND_PROCFS: ChannelSpec(8.0e-5, 0.25, 2e-6, "softnet_data via /proc"),
    KIND_VSWITCH: ChannelSpec(3.0e-4, 0.25, 3e-6, "per-rule stats via OpenFlow"),
    KIND_QEMU: ChannelSpec(2.0e-4, 0.25, 3e-6, "instrumented QEMU log"),
    KIND_MIDDLEBOX: ChannelSpec(4.0e-4, 0.25, 3e-6, "middlebox agent socket"),
    KIND_GUEST: ChannelSpec(4.0e-4, 0.25, 3e-6, "guest kernel via VM channel"),
}

#: The agent <-> controller RPC leg measured in Figure 9.
CONTROLLER_CHANNEL = ChannelSpec(4.0e-4, 0.25, 4e-6, "agent-controller RPC")

#: Self-observability: per-kind read latency histogram (the software
#: analog of Figure 9) and fault counters.  Labelled by element *kind*
#: — six values — never by element id (cardinality rule; see DESIGN.md).
READ_LATENCY_METRIC = "perfsight_channel_read_latency_seconds"
CHANNEL_FAULTS_METRIC = "perfsight_channel_faults_total"

#: A read that takes this multiple of the channel's median latency is
#: declared timed out (the agent cannot block a sweep on one element).
DEFAULT_TIMEOUT_MULTIPLE = 100.0


class ChannelFault(Exception):
    """Base class for collection-channel failures (Section 4.2 paths)."""


class ChannelError(ChannelFault):
    """The access path errored outright (EIO, closed socket, ...)."""


class ChannelTimeout(ChannelFault):
    """The access path did not answer within the channel's deadline.

    ``latency_s`` is the time the reader wasted waiting — the deadline,
    by definition — which the agent still accounts against the sweep.
    """

    def __init__(self, message: str, latency_s: float) -> None:
        super().__init__(message)
        self.latency_s = latency_s


@dataclass(frozen=True)
class ChannelFaultPlan:
    """Per-read fault probabilities for one collection channel.

    On each read at most one fault fires: ``error_rate`` raises
    :class:`ChannelError`, ``timeout_rate`` raises
    :class:`ChannelTimeout`, ``stale_rate`` silently serves the
    previously read snapshot (a wedged counter source that keeps
    answering with old data).  The remaining probability mass reads
    normally.
    """

    error_rate: float = 0.0
    timeout_rate: float = 0.0
    stale_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "timeout_rate", "stale_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]: {value!r}")
        if self.error_rate + self.timeout_rate + self.stale_rate > 1.0 + 1e-12:
            raise ValueError(
                "fault rates must sum to at most 1: "
                f"{self.error_rate} + {self.timeout_rate} + {self.stale_rate}"
            )

    @property
    def active(self) -> bool:
        return self.error_rate > 0 or self.timeout_rate > 0 or self.stale_rate > 0


#: The default, never-faulting plan shared by all healthy channels.
NO_FAULTS = ChannelFaultPlan()


class Channel:
    """Pulls one element's counters, modelling the access path's cost."""

    def __init__(
        self,
        element,
        rng,
        spec: Optional[ChannelSpec] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.element = element
        self.rng = rng
        if spec is None:
            try:
                spec = CHANNEL_SPECS[element.kind]
            except KeyError:
                raise ValueError(
                    f"element {element.name!r} has unknown kind {element.kind!r}"
                ) from None
        self.spec = spec
        self.timeout_s = (
            timeout_s
            if timeout_s is not None
            else spec.median_latency_s * DEFAULT_TIMEOUT_MULTIPLE
        )
        self.fault_plan = NO_FAULTS
        self.reads = 0
        self.total_latency_s = 0.0
        self.total_cpu_s = 0.0
        self.errors = 0
        self.timeouts = 0
        self.stale_reads = 0
        self._last_snapshot: Optional[CounterSnapshot] = None
        self._last_record: Optional[StatRecord] = None

    def sample_latency(self) -> float:
        """One latency draw from the channel's lognormal profile."""
        mu = math.log(self.spec.median_latency_s)
        return self.rng.lognormvariate(mu, self.spec.sigma)

    # -- fault machinery ----------------------------------------------------------

    def set_fault_plan(self, plan: ChannelFaultPlan) -> ChannelFaultPlan:
        """Install a fault plan; returns the previous one (for undo)."""
        previous = self.fault_plan
        self.fault_plan = plan
        return previous

    def _draw_fault(self) -> Optional[str]:
        plan = self.fault_plan
        if not plan.active:
            return None
        draw = self.rng.random()
        if draw < plan.error_rate:
            return "error"
        if draw < plan.error_rate + plan.timeout_rate:
            return "timeout"
        if draw < plan.error_rate + plan.timeout_rate + plan.stale_rate:
            return "stale"
        return None

    def _prefault(self) -> bool:
        """Raise on an injected error/timeout; returns True for stale.

        A failed read still costs the reader: an error costs one normal
        latency draw plus the read's CPU, a timeout costs the full
        deadline plus the read's CPU (the agent sat in the syscall until
        the deadline fired).
        """
        fault = self._draw_fault()
        if fault == "error":
            self.errors += 1
            self._account_read()
            obs.counter(
                CHANNEL_FAULTS_METRIC, kind=self.element.kind, fault="error"
            )
            raise ChannelError(
                f"read error on {self.element.name!r} "
                f"({self.spec.access_path})"
            )
        if fault == "timeout":
            self.timeouts += 1
            self.reads += 1
            self.total_latency_s += self.timeout_s
            self.total_cpu_s += self.spec.cpu_cost_s
            obs.counter(
                CHANNEL_FAULTS_METRIC, kind=self.element.kind, fault="timeout"
            )
            obs.observe(
                READ_LATENCY_METRIC, self.timeout_s, kind=self.element.kind
            )
            raise ChannelTimeout(
                f"read of {self.element.name!r} exceeded its "
                f"{self.timeout_s:g}s deadline ({self.spec.access_path})",
                latency_s=self.timeout_s,
            )
        return fault == "stale"

    # -- reads --------------------------------------------------------------------

    def read(
        self, timestamp: float, attrs: Optional[Iterable[str]] = None
    ) -> Tuple[StatRecord, float]:
        """Fetch a snapshot; returns (record, simulated latency seconds)."""
        stale = self._prefault()
        if stale and self._last_record is not None:
            self.stale_reads += 1
            obs.counter(
                CHANNEL_FAULTS_METRIC, kind=self.element.kind, fault="stale"
            )
            record = self._last_record
        else:
            snap = self.element.snapshot()
            record = StatRecord(
                timestamp=timestamp,
                element_id=self.element.name,
                attrs=snap,
                machine=self.element.machine,
            )
            self._last_record = record
        if attrs is not None:
            record = record.subset(attrs)
        latency = self._account_read()
        return record, latency

    def read_versioned(self, timestamp: float) -> Tuple[CounterSnapshot, float]:
        """Fetch a typed, versioned snapshot over the same access path.

        Identical latency/CPU accounting to :meth:`read` — the cost is a
        property of the access path, not of the record format — so the
        Figure 9/16 overhead results are unchanged when the agent store
        polls through this instead of per-query pulls.

        A stale fault re-serves the previously read snapshot unchanged
        (same seq, original observation time), which the store then
        delta-compresses away: the element simply stops producing fresh
        data, exactly what a wedged counter source looks like.
        """
        stale = self._prefault()
        if stale and self._last_snapshot is not None:
            self.stale_reads += 1
            obs.counter(
                CHANNEL_FAULTS_METRIC, kind=self.element.kind, fault="stale"
            )
            snap = self._last_snapshot
        else:
            snap = self.element.snapshot_versioned(timestamp)
            self._last_snapshot = snap
        return snap, self._account_read()

    def _account_read(self) -> float:
        latency = self.sample_latency()
        self.reads += 1
        self.total_latency_s += latency
        self.total_cpu_s += self.spec.cpu_cost_s
        obs.observe(READ_LATENCY_METRIC, latency, kind=self.element.kind)
        return latency
