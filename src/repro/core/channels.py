"""Element-agent collection channels (Sections 4.2 and 6).

The real PerfSight pulls counters over whichever access path each element
type offers: device files for ``net_device`` counters (pNIC, TUN),
``/proc`` for ``softnet_data`` (backlog/NAPI), the OpenFlow control
channel for per-rule vswitch stats, QEMU's instrumented logs, and a unix
socket into each middlebox process.  Figure 9 measures those paths:
device files cost ~2 ms, everything else completes within 500 us.

Each :class:`Channel` wraps one element with its kind's latency model
(lognormal around the measured median, drawn from the simulator RNG so
runs reproduce) and a CPU cost per read that the agent accumulates —
the per-poll cost whose product with poll frequency is Figure 16.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.counters import CounterSnapshot
from repro.core.records import StatRecord
from repro.simnet.element import (
    KIND_GUEST,
    KIND_MIDDLEBOX,
    KIND_NETDEV,
    KIND_PROCFS,
    KIND_QEMU,
    KIND_VSWITCH,
)


@dataclass(frozen=True)
class ChannelSpec:
    """Latency/cost profile of one collection path."""

    #: Median response latency, seconds (Figure 9's per-channel level).
    median_latency_s: float
    #: Lognormal sigma of the latency spread.
    sigma: float
    #: Agent CPU consumed per read, seconds (drives Figure 16).
    cpu_cost_s: float
    #: Human-readable description of the real access path.
    access_path: str


#: Calibrated to Figure 9: Agent-pNIC and Agent-TUN around 2 ms (device
#: file open/read/parse), Agent-Backlog under 100 us (/proc), QEMU log
#: and middlebox/guest sockets within 500 us.
CHANNEL_SPECS: Dict[str, ChannelSpec] = {
    KIND_NETDEV: ChannelSpec(2.0e-3, 0.25, 5e-6, "net_device via device file"),
    KIND_PROCFS: ChannelSpec(8.0e-5, 0.25, 2e-6, "softnet_data via /proc"),
    KIND_VSWITCH: ChannelSpec(3.0e-4, 0.25, 3e-6, "per-rule stats via OpenFlow"),
    KIND_QEMU: ChannelSpec(2.0e-4, 0.25, 3e-6, "instrumented QEMU log"),
    KIND_MIDDLEBOX: ChannelSpec(4.0e-4, 0.25, 3e-6, "middlebox agent socket"),
    KIND_GUEST: ChannelSpec(4.0e-4, 0.25, 3e-6, "guest kernel via VM channel"),
}

#: The agent <-> controller RPC leg measured in Figure 9.
CONTROLLER_CHANNEL = ChannelSpec(4.0e-4, 0.25, 4e-6, "agent-controller RPC")


class Channel:
    """Pulls one element's counters, modelling the access path's cost."""

    def __init__(self, element, rng, spec: Optional[ChannelSpec] = None) -> None:
        self.element = element
        self.rng = rng
        if spec is None:
            try:
                spec = CHANNEL_SPECS[element.kind]
            except KeyError:
                raise ValueError(
                    f"element {element.name!r} has unknown kind {element.kind!r}"
                ) from None
        self.spec = spec
        self.reads = 0
        self.total_latency_s = 0.0
        self.total_cpu_s = 0.0

    def sample_latency(self) -> float:
        """One latency draw from the channel's lognormal profile."""
        mu = math.log(self.spec.median_latency_s)
        return self.rng.lognormvariate(mu, self.spec.sigma)

    def read(
        self, timestamp: float, attrs: Optional[Iterable[str]] = None
    ) -> Tuple[StatRecord, float]:
        """Fetch a snapshot; returns (record, simulated latency seconds)."""
        snap = self.element.snapshot()
        record = StatRecord(
            timestamp=timestamp,
            element_id=self.element.name,
            attrs=snap,
            machine=self.element.machine,
        )
        if attrs is not None:
            record = record.subset(attrs)
        latency = self._account_read()
        return record, latency

    def read_versioned(self, timestamp: float) -> Tuple[CounterSnapshot, float]:
        """Fetch a typed, versioned snapshot over the same access path.

        Identical latency/CPU accounting to :meth:`read` — the cost is a
        property of the access path, not of the record format — so the
        Figure 9/16 overhead results are unchanged when the agent store
        polls through this instead of per-query pulls.
        """
        snap = self.element.snapshot_versioned(timestamp)
        return snap, self._account_read()

    def _account_read(self) -> float:
        latency = self.sample_latency()
        self.reads += 1
        self.total_latency_s += latency
        self.total_cpu_s += self.spec.cpu_cost_s
        return latency
