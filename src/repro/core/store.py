"""Per-agent time-series store for counter snapshots.

PerfSight's collection plane is streaming, not per-query: the agent
sweeps its element channels on a cadence, appends the resulting typed
:class:`~repro.core.counters.CounterSnapshot` objects to a bounded
per-element ring buffer, and uploads only what changed since the
collector's last acknowledged sequence number.  The controller keeps
one mirror :class:`TimeSeriesStore` per agent and answers every
Figure-6 utility routine as an O(1)-per-lookup window query against the
mirror — no per-query RPC, no re-reading of overlapping intervals.

Snapshots are delta-compressed on ingest: an element whose sequence
number did not advance (nothing observable changed) is not stored
again, so idle elements cost nothing beyond their first sample.

An agent restart breaks the monotonicity the windowed differencing
relies on: the new process re-numbers sequences from zero (element
objects recreated) and/or re-counts from zero (kernel counters reset
with the device, middlebox restarted).  Diffing across that boundary
would emit huge negative deltas, so on either signature — a sequence
regression, or a shrinking monotonic counter — the store **re-baselines**
the element: it drops the pre-restart history and restarts the series
from the incoming snapshot, counting the event in :attr:`resets`.
Diagnosis windows then never straddle a restart.

The store is thread-safe: an internal lock covers every ingest and
lookup, so an agent's cadence sweep can append while server handler
threads answer window queries (and, controller-side, while the fleet
refresh pool syncs one mirror as diagnosis threads read another)
without torn reads or ``deque mutated during iteration`` surprises.
The critical sections are tiny — a dict probe and a ring scan — so the
lock does not serialize anything that matters; the wire-level
reader/writer discipline lives in :mod:`repro.core.net.server`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Tuple

from repro.core.counters import CounterSnapshot, CounterWindow

#: Ring capacity per element.  At a 10 Hz cadence this retains ~25 s of
#: history per element, far beyond any diagnosis window in the paper.
DEFAULT_CAPACITY_PER_ELEMENT = 256

#: Monotonic counters whose regression marks a counter reset even when
#: the sequence number kept advancing (element object survived, counter
#: state was zeroed underneath it).
RESET_SENTINEL_ATTRS = (
    "rx_pkts",
    "rx_bytes",
    "tx_pkts",
    "tx_bytes",
    "drops",
    "in_time",
    "out_time",
)


class StoreError(KeyError):
    """Raised for lookups against data the store does not (yet) hold."""


class TimeSeriesStore:
    """Bounded, per-element ring buffers of versioned counter snapshots.

    ``on_regression`` selects what a non-monotonic ingest does:
    ``"rebaseline"`` (default) restarts the element's series from the
    incoming snapshot, ``"raise"`` keeps the old strict behaviour for
    stores whose producer is known never to restart.
    """

    def __init__(
        self,
        capacity_per_element: int = DEFAULT_CAPACITY_PER_ELEMENT,
        on_regression: str = "rebaseline",
    ):
        if capacity_per_element < 2:
            raise ValueError(
                f"capacity must hold at least a window pair: {capacity_per_element!r}"
            )
        if on_regression not in ("rebaseline", "raise"):
            raise ValueError(
                f"on_regression must be 'rebaseline' or 'raise': {on_regression!r}"
            )
        self.capacity_per_element = capacity_per_element
        self.on_regression = on_regression
        self._series: Dict[str, Deque[CounterSnapshot]] = {}
        # Reentrant because the public lookups compose (window ->
        # at_or_before) without releasing between steps.
        self._lock = threading.RLock()
        self.total_appended = 0
        self.total_deduped = 0
        self.resets: Dict[str, int] = {}
        self.total_resets = 0

    # -- ingest -----------------------------------------------------------------

    def append(self, snap: CounterSnapshot) -> bool:
        """Add a snapshot; returns False when delta-compressed away.

        Within one element the store keeps exactly one entry per
        sequence number, ordered, stamped with the time that version was
        first observed.  Re-observations of the current version are
        dropped without touching stored state, which keeps an agent
        store and its controller mirror byte-for-byte identical once the
        mirror has acknowledged the latest sequence numbers.
        """
        with self._lock:
            series = self._series.get(snap.element_id)
            if series is None:
                series = self._series[snap.element_id] = deque(
                    maxlen=self.capacity_per_element
                )
            if series:
                latest = series[-1]
                if snap.seq == latest.seq:
                    self.total_deduped += 1
                    return False
                if self._is_reset(latest, snap):
                    if self.on_regression == "raise":
                        raise ValueError(
                            f"non-monotonic snapshot for {snap.element_id!r}: "
                            f"seq {snap.seq} after {latest.seq}"
                        )
                    series.clear()
                    self.resets[snap.element_id] = (
                        self.resets.get(snap.element_id, 0) + 1
                    )
                    self.total_resets += 1
            series.append(snap)
            self.total_appended += 1
            return True

    @staticmethod
    def _is_reset(latest: CounterSnapshot, snap: CounterSnapshot) -> bool:
        """Did the element restart between ``latest`` and ``snap``?

        Two signatures: the sequence number went backwards (the producer
        re-numbered from scratch), or a monotonic counter shrank while
        the sequence advanced (the counter state was zeroed under a
        surviving producer).
        """
        if snap.seq < latest.seq:
            return True
        for attr in RESET_SENTINEL_ATTRS:
            if (
                attr in snap
                and attr in latest
                and snap.get(attr) < latest.get(attr) - 1e-9
            ):
                return True
        return False

    def extend(self, snaps: Iterable[CounterSnapshot]) -> int:
        """Append many snapshots; returns how many were actually stored."""
        return sum(1 for snap in snaps if self.append(snap))

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    # -- lookups ----------------------------------------------------------------

    def element_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def __contains__(self, element_id: str) -> bool:
        with self._lock:
            return element_id in self._series

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._series.values())

    def _get_series(self, element_id: str) -> Deque[CounterSnapshot]:
        try:
            return self._series[element_id]
        except KeyError:
            raise StoreError(f"no snapshots stored for element {element_id!r}") from None

    def latest(self, element_id: str) -> CounterSnapshot:
        with self._lock:
            return self._get_series(element_id)[-1]

    def at_or_before(self, element_id: str, t: float) -> CounterSnapshot:
        """The element's state as of time ``t`` (latest sample <= t)."""
        with self._lock:
            series = self._get_series(element_id)
            for snap in reversed(series):
                if snap.timestamp <= t + 1e-12:
                    return snap
            raise StoreError(
                f"no snapshot of {element_id!r} at or before t={t}: "
                f"history starts at {series[0].timestamp}"
            )

    def window(self, element_id: str, t0: float, t1: float) -> CounterWindow:
        """The element's activity over ``[t0, t1]``.

        The start bound falls back to the oldest retained sample when
        the ring no longer reaches back to ``t0``.
        """
        if t1 < t0:
            raise ValueError(f"window ends before it starts: [{t0}, {t1}]")
        with self._lock:
            series = self._get_series(element_id)
            end = self.at_or_before(element_id, t1)
            try:
                start = self.at_or_before(element_id, t0)
            except StoreError:
                start = series[0]
            return CounterWindow(start=start, end=end)

    def window_ending_now(self, element_id: str, duration_s: float) -> CounterWindow:
        """The trailing ``duration_s`` window up to the latest sample.

        This is the hot path of every Figure-6 routine, so it scans the
        ring once instead of delegating to :meth:`window`.
        """
        if duration_s <= 0:
            raise ValueError(f"window duration must be positive: {duration_s!r}")
        with self._lock:
            series = self._get_series(element_id)
            end = series[-1]
            t0 = end.timestamp - duration_s + 1e-12
            start = series[0]
            for snap in reversed(series):
                if snap.timestamp <= t0:
                    start = snap
                    break
            return CounterWindow(start=start, end=end)

    # -- delta-batched collection -------------------------------------------------

    def cursor(self) -> Dict[str, int]:
        """element id -> latest stored sequence number (the ack vector)."""
        with self._lock:
            return {
                eid: series[-1].seq
                for eid, series in self._series.items()
                if series
            }

    def changed_since(self, acked: Mapping[str, int]) -> List[CounterSnapshot]:
        """Every stored snapshot newer than the collector's ack vector.

        Returned oldest-first per element so a mirror replaying the batch
        converges to the same series order.

        A floor *above* the element's newest stored sequence means the
        collector acknowledged a previous incarnation of the producer
        (it restarted and re-numbered); everything held is resent so the
        mirror can observe the regression and re-baseline.
        """
        with self._lock:
            out: List[CounterSnapshot] = []
            for eid in sorted(self._series):
                floor = acked.get(eid, -1)
                series = self._series[eid]
                if not series:
                    continue
                if series[-1].seq < floor:
                    floor = -1
                elif series[-1].seq == floor:
                    continue
                out.extend(snap for snap in series if snap.seq > floor)
            return out

    def drain(
        self, acked: Mapping[str, int]
    ) -> Tuple[List[CounterSnapshot], Dict[str, int]]:
        """:meth:`changed_since` and :meth:`cursor` as one atomic step.

        The pair must be computed under one lock hold: were a cadence
        sweep to append between the two calls, the cursor would
        acknowledge a sequence number whose snapshot is not in the
        batch, and the collector would never receive it (until the
        element happened to change again).
        """
        with self._lock:
            return self.changed_since(acked), self.cursor()
