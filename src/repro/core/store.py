"""Per-agent time-series store for counter snapshots.

PerfSight's collection plane is streaming, not per-query: the agent
sweeps its element channels on a cadence, appends the resulting typed
:class:`~repro.core.counters.CounterSnapshot` objects to a bounded
per-element ring buffer, and uploads only what changed since the
collector's last acknowledged sequence number.  The controller keeps
one mirror :class:`TimeSeriesStore` per agent and answers every
Figure-6 utility routine as an O(1)-per-lookup window query against the
mirror — no per-query RPC, no re-reading of overlapping intervals.

Storage is **columnar**: each element's series is a fixed-capacity ring
of flat ``array`` buffers — one ``array('q')`` of sequence numbers, one
``array('d')`` of timestamps, and one stride-``n_attrs`` ``array('d')``
of attribute values — rather than a deque of per-snapshot dicts.  A
delta batch therefore encodes for the wire straight out of the value
arrays (:meth:`TimeSeriesStore.drain_blocks`) and a mirror applies a
received batch straight back into them (:meth:`TimeSeriesStore
.apply_blocks` → :meth:`append_row`) with zero intermediate dict
objects; dict-shaped :class:`CounterSnapshot` views are materialized
lazily only at the query/diagnosis boundary, so Algorithm-1/2 verdicts
and Figure-6 lookups are byte-for-byte what the dict-backed store
produced.  Cells for counters an element does not export hold
:data:`~repro.core.counters.ABSENT` (NaN) and vanish on
materialization.

Snapshots are delta-compressed on ingest: an element whose sequence
number did not advance (nothing observable changed) is not stored
again, so idle elements cost nothing beyond their first sample.

An agent restart breaks the monotonicity the windowed differencing
relies on: the new process re-numbers sequences from zero (element
objects recreated) and/or re-counts from zero (kernel counters reset
with the device, middlebox restarted).  Diffing across that boundary
would emit huge negative deltas, so on either signature — a sequence
regression, or a shrinking monotonic counter — the store **re-baselines**
the element: it drops the pre-restart history and restarts the series
from the incoming snapshot, counting the event in :attr:`resets`.
Diagnosis windows then never straddle a restart.

The store is thread-safe: an internal lock covers every ingest and
lookup, so an agent's cadence sweep can append while server handler
threads answer window queries (and, controller-side, while the fleet
refresh pool syncs one mirror as diagnosis threads read another)
without torn reads.  The critical sections are tiny — a dict probe and
a ring scan — so the lock does not serialize anything that matters; the
wire-level reader/writer discipline lives in
:mod:`repro.core.net.server`.
"""

from __future__ import annotations

import threading
from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.counters import ABSENT, CounterSnapshot, CounterWindow

#: Ring capacity per element.  At a 10 Hz cadence this retains ~25 s of
#: history per element, far beyond any diagnosis window in the paper.
DEFAULT_CAPACITY_PER_ELEMENT = 256

#: Monotonic counters whose regression marks a counter reset even when
#: the sequence number kept advancing (element object survived, counter
#: state was zeroed underneath it).
RESET_SENTINEL_ATTRS = (
    "rx_pkts",
    "rx_bytes",
    "tx_pkts",
    "tx_bytes",
    "drops",
    "in_time",
    "out_time",
)

#: One element's slice of a delta batch, shaped for the wire codec:
#: ``(element_id, machine, attr_names, rows)`` where every row is
#: ``(seq, timestamp, values)`` with ``values`` position-aligned to
#: ``attr_names`` (ABSENT/NaN cells included, fixed stride).
SeriesBlock = Tuple[str, str, Tuple[str, ...], List[Tuple[int, float, Sequence[float]]]]


class StoreError(KeyError):
    """Raised for lookups against data the store does not (yet) hold."""


class _ElementSeries:
    """Fixed-capacity columnar ring of one element's snapshots.

    Logical row ``i`` (0 = oldest) lives at physical slot
    ``(start + i) % capacity``; the value matrix is row-major with
    stride ``len(attr_names)``.  Growing the attribute schema (a new
    ``drops.<location>`` appearing mid-flight) rebuilds the value array
    with the wider stride and back-fills old rows with ABSENT — rare,
    and invisible to readers because materialization strips ABSENT.
    """

    __slots__ = (
        "element_id",
        "machine",
        "capacity",
        "attr_names",
        "attr_index",
        "seqs",
        "stamps",
        "values",
        "start",
        "count",
        "_sentinel_cols",
        "_memo_names",
        "_memo_cols",
        "_memo_sentinels",
        "_absent_row",
        "_snap_cache",
        "version",
        "_win_memo",
        "on_evict",
        "on_clear",
    )

    def __init__(self, element_id: str, machine: str, capacity: int) -> None:
        self.element_id = element_id
        self.machine = machine
        self.capacity = capacity
        self.attr_names: Tuple[str, ...] = ()
        self.attr_index: Dict[str, int] = {}
        self.seqs = array("q", bytes(8 * capacity))
        self.stamps = array("d", bytes(8 * capacity))
        self.values = array("d")
        self.start = 0
        self.count = 0
        self._sentinel_cols: Tuple[Tuple[str, int], ...] = ()
        self._memo_names: Optional[Tuple[str, ...]] = None
        self._memo_cols: List[int] = []
        self._memo_sentinels: List[Tuple[int, int]] = []
        self._absent_row = array("d")
        # Rows are write-once until their slot is recycled, so the
        # dict-shaped view of each slot is memoized: the Figure-6
        # lookups (window_ending_now et al.) materialize each row once
        # per residency instead of once per query.
        self._snap_cache: List[Optional[CounterSnapshot]] = [None] * capacity
        # Bumped on every mutation; lets read-side memos (trailing
        # windows) validate in O(1) instead of re-deriving per query.
        self.version = 0
        self._win_memo: Dict[float, Tuple[int, "CounterWindow"]] = {}
        # Tiering hooks (see repro.core.tiers): ``on_evict(series,
        # slot)`` fires while a recycled slot still holds its dying
        # row; ``on_clear(series)`` fires on a re-baseline.  Both run
        # under the owning store's lock.  None for a flat store.
        self.on_evict = None
        self.on_clear = None

    # -- geometry ---------------------------------------------------------------

    def _slot(self, i: int) -> int:
        return (self.start + i) % self.capacity

    def _widen(self, new_names: Sequence[str]) -> None:
        """Add columns for never-seen attrs; back-fill old rows with ABSENT."""
        old_stride = len(self.attr_names)
        self.attr_names = self.attr_names + tuple(new_names)
        for name in new_names:
            self.attr_index[name] = len(self.attr_index)
        stride = len(self.attr_names)
        widened = array("d", [ABSENT]) * (self.capacity * stride)
        for slot in range(self.capacity):
            widened[slot * stride: slot * stride + old_stride] = self.values[
                slot * old_stride: (slot + 1) * old_stride
            ]
        self.values = widened
        self._sentinel_cols = tuple(
            (name, self.attr_index[name])
            for name in RESET_SENTINEL_ATTRS
            if name in self.attr_index
        )
        self._memo_names = None
        self._absent_row = array("d", [ABSENT]) * stride

    def _columns_for(self, names: Sequence[str]) -> List[int]:
        """Column index per incoming attr name, widening on new names.

        The wire-apply path hands in the *same* names tuple for every
        row of a block, so a one-entry memo makes the per-row mapping a
        single identity check.
        """
        if names is self._memo_names:
            return self._memo_cols
        missing = [n for n in names if n not in self.attr_index]
        if missing:
            self._widen(missing)
        cols = [self.attr_index[n] for n in names]
        if isinstance(names, tuple):
            self._memo_names = names
            self._memo_cols = cols
            self._memo_sentinels = self._sentinel_pairs(names)
        return cols

    def _sentinel_pairs(self, names: Sequence[str]) -> List[Tuple[int, int]]:
        """(incoming index, stored column) for each sentinel in ``names``."""
        sentinel = dict(self._sentinel_cols)
        return [
            (i, sentinel[name])
            for i, name in enumerate(names)
            if name in sentinel
        ]

    # -- ingest -----------------------------------------------------------------

    def push_row(
        self,
        machine: str,
        seq: int,
        timestamp: float,
        names: Sequence[str],
        row_values: Sequence[float],
    ) -> None:
        self.machine = machine
        cols = self._columns_for(names)
        stride = len(self.attr_names)
        if self.count == self.capacity:
            slot = self.start
            if self.on_evict is not None:
                self.on_evict(self, slot)
            self.start = (self.start + 1) % self.capacity
        else:
            slot = self._slot(self.count)
            self.count += 1
        self.seqs[slot] = seq
        self.stamps[slot] = timestamp
        self._snap_cache[slot] = None
        self.version += 1
        base = slot * stride
        if stride:
            self.values[base: base + stride] = self._absent_row
            values = self.values
            for col, value in zip(cols, row_values):
                values[base + col] = value

    def clear(self) -> None:
        self.start = 0
        self.count = 0
        self._snap_cache = [None] * self.capacity
        self.version += 1
        if self.on_clear is not None:
            self.on_clear(self)

    def nbytes(self) -> int:
        """History buffer bytes held (ring arrays; caches excluded)."""
        return (
            len(self.seqs) * self.seqs.itemsize
            + len(self.stamps) * self.stamps.itemsize
            + len(self.values) * self.values.itemsize
        )

    # -- reads ------------------------------------------------------------------

    def seq_at(self, i: int) -> int:
        return self.seqs[self._slot(i)]

    def stamp_at(self, i: int) -> float:
        return self.stamps[self._slot(i)]

    def value_at(self, i: int, col: int) -> float:
        return self.values[self._slot(i) * len(self.attr_names) + col]

    def row_values(self, i: int) -> array:
        stride = len(self.attr_names)
        base = self._slot(i) * stride
        return self.values[base: base + stride]

    def materialize(self, i: int) -> CounterSnapshot:
        slot = self._slot(i)
        snap = self._snap_cache[slot]
        if snap is None:
            snap = self._snap_cache[slot] = CounterSnapshot.from_columns(
                self.element_id,
                self.machine,
                self.seqs[slot],
                self.stamps[slot],
                self.attr_names,
                self.row_values(i),
            )
        return snap

    def is_reset_against_latest(
        self, seq: int, names: Sequence[str], row_values: Sequence[float]
    ) -> bool:
        """Did the producer restart between the latest row and this one?

        Two signatures: the sequence number went backwards (the producer
        re-numbered from scratch), or a monotonic counter shrank while
        the sequence advanced (the counter state was zeroed under a
        surviving producer).  ABSENT cells never vote: a counter the
        element stopped exporting is not a regression.
        """
        last_slot = (self.start + self.count - 1) % self.capacity
        if seq < self.seqs[last_slot]:
            return True
        if not self._sentinel_cols:
            return False
        # (incoming index, stored column) pairs — memoized per names
        # tuple, so the wire-apply path pays the mapping once per block
        if names is self._memo_names:
            pairs = self._memo_sentinels
        else:
            pairs = self._sentinel_pairs(names)
        base = last_slot * len(self.attr_names)
        values = self.values
        for i, col in pairs:
            new = row_values[i]
            if new != new:  # ABSENT/NaN never votes
                continue
            old = values[base + col]
            if old == old and new < old - 1e-9:
                return True
        return False


class TimeSeriesStore:
    """Bounded, columnar per-element ring buffers of counter snapshots.

    ``on_regression`` selects what a non-monotonic ingest does:
    ``"rebaseline"`` (default) restarts the element's series from the
    incoming snapshot, ``"raise"`` keeps the old strict behaviour for
    stores whose producer is known never to restart.
    """

    def __init__(
        self,
        capacity_per_element: int = DEFAULT_CAPACITY_PER_ELEMENT,
        on_regression: str = "rebaseline",
    ):
        if capacity_per_element < 2:
            raise ValueError(
                f"capacity must hold at least a window pair: {capacity_per_element!r}"
            )
        if on_regression not in ("rebaseline", "raise"):
            raise ValueError(
                f"on_regression must be 'rebaseline' or 'raise': {on_regression!r}"
            )
        self.capacity_per_element = capacity_per_element
        self.on_regression = on_regression
        self._series: Dict[str, _ElementSeries] = {}
        # Reentrant because the public lookups compose (window ->
        # at_or_before) without releasing between steps.
        self._lock = threading.RLock()
        self.total_appended = 0
        self.total_deduped = 0
        self.resets: Dict[str, int] = {}
        self.total_resets = 0

    def _make_series(self, element_id: str, machine: str) -> _ElementSeries:
        """Series factory — the hook subclasses (tiered stores) override."""
        return _ElementSeries(element_id, machine, self.capacity_per_element)

    # -- ingest -----------------------------------------------------------------

    def append_row(
        self,
        element_id: str,
        machine: str,
        seq: int,
        timestamp: float,
        names: Sequence[str],
        values: Sequence[float],
    ) -> bool:
        """Ingest one columnar row; returns False when delta-compressed.

        This is the zero-copy half of :meth:`append`: the wire codec
        (and any other columnar producer) lands rows directly in the
        value arrays without ever building an attrs dict.  ``names`` and
        ``values`` are position-aligned; ABSENT/NaN cells mark counters
        the element does not export.

        Within one element the store keeps exactly one entry per
        sequence number, ordered, stamped with the time that version was
        first observed.  Re-observations of the current version are
        dropped without touching stored state, which keeps an agent
        store and its controller mirror byte-for-byte identical once the
        mirror has acknowledged the latest sequence numbers.
        """
        with self._lock:
            series = self._series.get(element_id)
            if series is None:
                series = self._series[element_id] = self._make_series(
                    element_id, machine
                )
            if series.count:
                if seq == series.seq_at(series.count - 1):
                    self.total_deduped += 1
                    return False
                if series.is_reset_against_latest(seq, names, values):
                    if self.on_regression == "raise":
                        raise ValueError(
                            f"non-monotonic snapshot for {element_id!r}: "
                            f"seq {seq} after {series.seq_at(series.count - 1)}"
                        )
                    series.clear()
                    self.resets[element_id] = self.resets.get(element_id, 0) + 1
                    self.total_resets += 1
            series.push_row(machine, seq, timestamp, names, values)
            self.total_appended += 1
            return True

    def append(self, snap: CounterSnapshot) -> bool:
        """Add a snapshot; returns False when delta-compressed away."""
        names = tuple(snap.attrs)
        return self.append_row(
            snap.element_id,
            snap.machine,
            snap.seq,
            snap.timestamp,
            names,
            [float(snap.attrs[n]) for n in names],
        )

    def extend(self, snaps: Iterable[CounterSnapshot]) -> int:
        """Append many snapshots; returns how many were actually stored."""
        return sum(1 for snap in snaps if self.append(snap))

    def apply_blocks(self, blocks: Iterable[SeriesBlock]) -> int:
        """Apply a drained delta batch; returns rows shipped (pre-dedup).

        The mirror half of the packed wire path.  Semantically this is
        :meth:`append_row` per row — same dedup, reset detection and
        re-baselining — but the whole batch lands under one lock hold
        with the element series and its column mapping resolved once per
        block, which is where the decode side's throughput comes from.
        """
        shipped = 0
        with self._lock:
            for element_id, machine, names, rows in blocks:
                shipped += len(rows)
                series = self._series.get(element_id)
                if series is None:
                    series = self._series[element_id] = self._make_series(
                        element_id, machine
                    )
                for seq, timestamp, values in rows:
                    if series.count:
                        if seq == series.seqs[
                            (series.start + series.count - 1) % series.capacity
                        ]:
                            self.total_deduped += 1
                            continue
                        if series.is_reset_against_latest(seq, names, values):
                            if self.on_regression == "raise":
                                raise ValueError(
                                    f"non-monotonic snapshot for {element_id!r}: "
                                    f"seq {seq} after "
                                    f"{series.seq_at(series.count - 1)}"
                                )
                            series.clear()
                            self.resets[element_id] = (
                                self.resets.get(element_id, 0) + 1
                            )
                            self.total_resets += 1
                    series.push_row(machine, seq, timestamp, names, values)
                    self.total_appended += 1
        return shipped

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    # -- accounting --------------------------------------------------------------

    def nbytes(self) -> Dict[str, int]:
        """History buffer bytes by tier; a flat store is all ``fine``.

        Counts the ring arrays only (snapshot/window caches are
        derived views).  Tiered subclasses add per-coarse-tier keys;
        every shape carries ``fine`` and ``total`` so accounting
        consumers (gauges, benchmarks) read one schema.
        """
        with self._lock:
            fine = sum(s.nbytes() for s in self._series.values())
            return {"fine": fine, "total": fine}

    # -- lookups ----------------------------------------------------------------

    def element_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def __contains__(self, element_id: str) -> bool:
        with self._lock:
            return element_id in self._series

    def __len__(self) -> int:
        with self._lock:
            return sum(s.count for s in self._series.values())

    def _get_series(self, element_id: str) -> _ElementSeries:
        series = self._series.get(element_id)
        if series is None or not series.count:
            raise StoreError(f"no snapshots stored for element {element_id!r}")
        return series

    def latest(self, element_id: str) -> CounterSnapshot:
        with self._lock:
            series = self._get_series(element_id)
            return series.materialize(series.count - 1)

    def at_or_before(self, element_id: str, t: float) -> CounterSnapshot:
        """The element's state as of time ``t`` (latest sample <= t)."""
        with self._lock:
            series = self._get_series(element_id)
            for i in range(series.count - 1, -1, -1):
                if series.stamp_at(i) <= t + 1e-12:
                    return series.materialize(i)
            raise StoreError(
                f"no snapshot of {element_id!r} at or before t={t}: "
                f"history starts at {series.stamp_at(0)}"
            )

    def window(self, element_id: str, t0: float, t1: float) -> CounterWindow:
        """The element's activity over ``[t0, t1]``.

        The start bound falls back to the oldest retained sample when
        the ring no longer reaches back to ``t0``.
        """
        if t1 < t0:
            raise ValueError(f"window ends before it starts: [{t0}, {t1}]")
        with self._lock:
            series = self._get_series(element_id)
            end = self.at_or_before(element_id, t1)
            try:
                start = self.at_or_before(element_id, t0)
            except StoreError:
                start = series.materialize(0)
            return CounterWindow(start=start, end=end)

    def window_ending_now(self, element_id: str, duration_s: float) -> CounterWindow:
        """The trailing ``duration_s`` window up to the latest sample.

        This is the hot path of every Figure-6 routine, so it scans the
        ring once instead of delegating to :meth:`window`.
        """
        if duration_s <= 0:
            raise ValueError(f"window duration must be positive: {duration_s!r}")
        with self._lock:
            series = self._get_series(element_id)
            memo = series._win_memo.get(duration_s)
            if memo is not None and memo[0] == series.version:
                return memo[1]
            last = series.count - 1
            stamps, start, cap = series.stamps, series.start, series.capacity
            t0 = stamps[(start + last) % cap] - duration_s + 1e-12
            start_i = 0
            for i in range(last, -1, -1):
                if stamps[(start + i) % cap] <= t0:
                    start_i = i
                    break
            win = CounterWindow(
                start=series.materialize(start_i), end=series.materialize(last)
            )
            series._win_memo[duration_s] = (series.version, win)
            return win

    # -- delta-batched collection -------------------------------------------------

    def cursor(self) -> Dict[str, int]:
        """element id -> latest stored sequence number (the ack vector)."""
        with self._lock:
            return {
                eid: series.seq_at(series.count - 1)
                for eid, series in self._series.items()
                if series.count
            }

    def _changed_floor(self, series: _ElementSeries, acked: Mapping[str, int]) -> int:
        """The ack floor for one element, restart-aware.

        A floor *above* the element's newest stored sequence means the
        collector acknowledged a previous incarnation of the producer
        (it restarted and re-numbered); everything held is resent so the
        mirror can observe the regression and re-baseline.  Returns -1
        for "send everything", the element's own latest seq for "send
        nothing new" handling by the caller.
        """
        floor = acked.get(series.element_id, -1)
        if series.seq_at(series.count - 1) < floor:
            return -1
        return floor

    def changed_since(self, acked: Mapping[str, int]) -> List[CounterSnapshot]:
        """Every stored snapshot newer than the collector's ack vector.

        Returned oldest-first per element so a mirror replaying the batch
        converges to the same series order.  This is the dict-shaped
        view (materialized snapshots); the wire hot path uses
        :meth:`drain_blocks` instead.
        """
        with self._lock:
            out: List[CounterSnapshot] = []
            for eid in sorted(self._series):
                series = self._series[eid]
                if not series.count:
                    continue
                floor = self._changed_floor(series, acked)
                for i in range(series.count):
                    if series.seq_at(i) > floor:
                        out.append(series.materialize(i))
            return out

    def changed_blocks(self, acked: Mapping[str, int]) -> List[SeriesBlock]:
        """:meth:`changed_since`, columnar: zero dicts, zero snapshots.

        Each element contributes one block — its id, machine, attr-name
        schema and the changed rows as ``(seq, timestamp, values)`` with
        ``values`` a flat fixed-stride slice of the ring's value array.
        This is what the binary wire codec packs directly.
        """
        with self._lock:
            out: List[SeriesBlock] = []
            for eid in sorted(self._series):
                series = self._series[eid]
                if not series.count:
                    continue
                floor = self._changed_floor(series, acked)
                rows: List[Tuple[int, float, Sequence[float]]] = []
                for i in range(series.count):
                    seq = series.seq_at(i)
                    if seq > floor:
                        rows.append((seq, series.stamp_at(i), series.row_values(i)))
                if rows:
                    out.append((eid, series.machine, series.attr_names, rows))
            return out

    def drain(
        self, acked: Mapping[str, int]
    ) -> Tuple[List[CounterSnapshot], Dict[str, int]]:
        """:meth:`changed_since` and :meth:`cursor` as one atomic step.

        The pair must be computed under one lock hold: were a cadence
        sweep to append between the two calls, the cursor would
        acknowledge a sequence number whose snapshot is not in the
        batch, and the collector would never receive it (until the
        element happened to change again).
        """
        with self._lock:
            return self.changed_since(acked), self.cursor()

    def drain_blocks(
        self, acked: Mapping[str, int]
    ) -> Tuple[List[SeriesBlock], Dict[str, int]]:
        """:meth:`drain`, columnar — the packed wire path's atomic drain."""
        with self._lock:
            return self.changed_blocks(acked), self.cursor()


def blocks_to_snapshots(blocks: Iterable[SeriesBlock]) -> List[CounterSnapshot]:
    """Materialize a drained block batch into dict-shaped snapshots.

    Compatibility shim for callers that still want the
    :meth:`TimeSeriesStore.drain` shape from a columnar drain.
    """
    out: List[CounterSnapshot] = []
    for element_id, machine, names, rows in blocks:
        for seq, timestamp, values in rows:
            out.append(
                CounterSnapshot.from_columns(
                    element_id, machine, seq, timestamp, names, values
                )
            )
    return out
