"""Element counters: the statistics primitives of PerfSight (Section 4.1).

The paper instruments every software-dataplane element with three counter
types:

* a **packet counter** and a **byte counter** on the element's datapath
  between its input and output methods (plus drop counters on every code
  branch that can discard a packet), and
* an **I/O time counter** recording the time spent inside read/write
  methods, used only by elements that interact with buffers.

Counters accumulate monotonically as packets are processed; aggregate
statistics (throughput, drop rate, average packet size) are derived by the
controller from two samples (Figure 6 of the paper).

The paper measures the update cost of each counter type on its testbed:
3 ns for a simple (packet/byte) counter and 0.29 us for a time counter
(Section 7.4).  :class:`CounterOverheadModel` carries those constants so the
simulator can charge instrumentation cost against an element's CPU budget,
which is what Table 2 and Figures 15-16 quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import isnan
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.core.records import StatRecord

#: Attribute-value sentinel meaning "this element does not export this
#: counter".  The array-backed store and the binary wire codec keep every
#: row at a fixed stride, so absent cells travel as NaN and are stripped
#: again on materialization; real counters are always finite.
ABSENT = float("nan")

#: The attribute names every :class:`CounterSet` exports regardless of
#: traffic: the fixed half of the wire schema, seeded into a
#: connection's id tables at HELLO time so steady-state binary frames
#: need no dictionary deltas.  Dynamic names (``drops.<location>``,
#: ``drops_flow.<flow>``) are announced incrementally by the codec.
STANDARD_ATTRS = (
    "rx_pkts",
    "rx_bytes",
    "tx_pkts",
    "tx_bytes",
    "drops",
    "drop_bytes",
    "in_time",
    "out_time",
)

#: Cost of one simple (packet or byte) counter update, in seconds.
#: Measured in the paper's testbed (Section 7.4): "simple counters consume
#: 3ns per update".
SIMPLE_COUNTER_UPDATE_COST_S = 3e-9

#: Cost of one I/O-time counter update, in seconds.  The paper: "a timer
#: counter consumes 0.29us per update" (two clock reads + accumulate).
TIME_COUNTER_UPDATE_COST_S = 0.29e-6


@dataclass(frozen=True)
class CounterOverheadModel:
    """CPU cost charged per counter update.

    ``enabled_simple`` / ``enabled_time`` let experiments toggle each
    counter family independently, matching the with/without-time-counter
    comparison of Table 2.
    """

    simple_update_cost_s: float = SIMPLE_COUNTER_UPDATE_COST_S
    time_update_cost_s: float = TIME_COUNTER_UPDATE_COST_S
    enabled_simple: bool = True
    enabled_time: bool = True

    def cost_for(self, simple_updates: float, time_updates: float) -> float:
        """CPU-seconds consumed by a batch of counter updates."""
        cost = 0.0
        if self.enabled_simple:
            cost += simple_updates * self.simple_update_cost_s
        if self.enabled_time:
            cost += time_updates * self.time_update_cost_s
        return cost

    @classmethod
    def disabled(cls) -> "CounterOverheadModel":
        """A model in which instrumentation costs nothing (uninstrumented)."""
        return cls(enabled_simple=False, enabled_time=False)


@dataclass(frozen=True)
class CounterSnapshot:
    """One element's typed, versioned counter snapshot.

    ``seq`` is a per-element monotonic sequence number that advances only
    when the observable counter state changes, which is what makes
    delta-batched collection possible: a collector that has acknowledged
    ``seq`` needs nothing from an element still at ``seq``.  ``attrs`` is
    an immutable mapping (copy-on-read is free: readers share it).
    """

    element_id: str
    machine: str
    seq: int
    timestamp: float
    attrs: Mapping[str, float]

    def get(self, attr: str, default: float = 0.0) -> float:
        return float(self.attrs.get(attr, default))

    def __contains__(self, attr: str) -> bool:
        return attr in self.attrs

    def at(self, timestamp: float) -> "CounterSnapshot":
        """The same counter state re-observed at a later time (shares attrs)."""
        if timestamp == self.timestamp:
            return self
        return replace(self, timestamp=timestamp)

    def to_record(self, attrs: Optional[Iterable[str]] = None) -> StatRecord:
        """Downgrade to the unified wire record format (Section 4.2)."""
        record = StatRecord(self.timestamp, self.element_id, self.attrs, self.machine)
        if attrs is not None:
            record = record.subset(attrs)
        return record

    def to_dict(self) -> Dict[str, object]:
        return {
            "element": self.element_id,
            "machine": self.machine,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CounterSnapshot":
        try:
            element_id = str(payload["element"])
            seq = int(payload["seq"])  # type: ignore[arg-type]
            timestamp = float(payload["timestamp"])  # type: ignore[arg-type]
            attrs_raw = payload["attrs"]
        except KeyError as exc:
            raise ValueError(f"counter snapshot missing field: {exc}") from exc
        if not isinstance(attrs_raw, Mapping):
            raise ValueError("counter snapshot attrs must be a mapping")
        attrs = {str(k): float(v) for k, v in attrs_raw.items()}
        return cls(element_id, str(payload.get("machine", "")), seq, timestamp, attrs)

    @classmethod
    def from_columns(
        cls,
        element_id: str,
        machine: str,
        seq: int,
        timestamp: float,
        names: Sequence[str],
        values: Sequence[float],
    ) -> "CounterSnapshot":
        """Materialize one row of a column-oriented series.

        ``names`` and ``values`` are position-aligned; :data:`ABSENT`
        (NaN) cells mark counters the element does not export and are
        dropped, so the dict view is indistinguishable from a snapshot
        that was never columnar.
        """
        attrs = {
            name: value
            for name, value in zip(names, values)
            if not isnan(value)
        }
        return cls(element_id, machine, seq, timestamp, attrs)


@dataclass(frozen=True)
class CounterWindow:
    """Two snapshots of one element bracketing an observation interval.

    This is the object every Figure-6 routine and both diagnosis
    algorithms actually operate on: counters are monotonic, so the
    difference between ``start`` and ``end`` is the activity within the
    window.  The helpers below replace the ad-hoc interval diffing the
    diagnosis modules used to reimplement individually.
    """

    start: CounterSnapshot
    end: CounterSnapshot

    def __post_init__(self) -> None:
        if self.start.element_id != self.end.element_id:
            raise ValueError(
                f"window mixes elements: {self.start.element_id!r} vs "
                f"{self.end.element_id!r}"
            )

    @property
    def element_id(self) -> str:
        return self.end.element_id

    @property
    def machine(self) -> str:
        return self.end.machine

    @property
    def duration_s(self) -> float:
        return self.end.timestamp - self.start.timestamp

    @property
    def empty(self) -> bool:
        """True when both ends are the same counter state (no activity)."""
        return self.start.seq == self.end.seq

    def delta(self, attr: str) -> float:
        return self.end.get(attr) - self.start.get(attr)

    def rate(self, attr: str) -> float:
        """Average growth per second; 0 for an empty/zero-length window."""
        dt = self.duration_s
        if dt <= 0:
            return 0.0
        return self.delta(attr) / dt

    def pkt_loss(self, in_attr: str = "rx_pkts", out_attr: str = "tx_pkts") -> float:
        """Growth of (in - out) over the window — the GetPktLoss formula."""
        gap_start = self.start.get(in_attr) - self.start.get(out_attr)
        gap_end = self.end.get(in_attr) - self.end.get(out_attr)
        return gap_end - gap_start

    def avg_pkt_size(
        self, bytes_attr: str = "rx_bytes", pkts_attr: str = "rx_pkts"
    ) -> float:
        d_pkts = self.delta(pkts_attr)
        if d_pkts <= 0:
            return 0.0
        return self.delta(bytes_attr) / d_pkts

    def growth(self, prefix: str) -> Dict[str, float]:
        """Positive per-attribute growth for attributes under ``prefix.``."""
        head = prefix + "."
        out: Dict[str, float] = {}
        for attr, value in self.end.attrs.items():
            if attr.startswith(head):
                delta = float(value) - self.start.get(attr)
                if delta > 0:
                    out[attr[len(head):]] = delta
        return out

    def drops_by_location(self) -> Dict[str, float]:
        return self.growth("drops")

    def drops_by_flow(self) -> Dict[str, float]:
        return self.growth("drops_flow")


class IOTimeCounter:
    """Accumulates time spent in an element's read or write method.

    The real implementation compares timestamps before and after each I/O
    call; here the simulator knows the elapsed simulated time directly and
    accounts it via :meth:`add`.  ``updates`` tracks how many instrumented
    call pairs happened so the overhead model can charge for them.
    """

    __slots__ = ("total_s", "updates")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.updates = 0.0

    def add(self, elapsed_s: float, calls: float = 1.0) -> None:
        if elapsed_s < 0:
            raise ValueError(f"negative I/O time: {elapsed_s!r}")
        self.total_s += elapsed_s
        self.updates += calls

    def reset(self) -> None:
        self.total_s = 0.0
        self.updates = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOTimeCounter(total_s={self.total_s:.6f}, updates={self.updates})"


class CounterSet:
    """The full counter suite carried by one element.

    Exposes the attribute names used throughout the paper's examples:

    * ``rx_pkts`` / ``rx_bytes`` — traffic entering the element (its input
      method).
    * ``tx_pkts`` / ``tx_bytes`` — traffic leaving the element (its output
      method).
    * per-location drop counters (``drops[location]``), because the paper
      instruments *every* code branch where a packet can be discarded and
      the drop location is the key diagnostic signal (Table 1).
    * ``in_time`` / ``out_time`` I/O-time counters (middlebox-style
      elements only; Section 5.2's ``t_input`` / ``t_output``).

    Per-flow drop attribution is kept alongside the totals so the
    contention-vs-bottleneck distinction (loss spread over many VMs vs one)
    can be computed (Section 5.1, last paragraph).
    """

    def __init__(self, overhead: Optional[CounterOverheadModel] = None) -> None:
        self.overhead = overhead if overhead is not None else CounterOverheadModel()
        self.rx_pkts = 0.0
        self.rx_bytes = 0.0
        self.tx_pkts = 0.0
        self.tx_bytes = 0.0
        self.drops: Dict[str, float] = {}
        self.drop_bytes: Dict[str, float] = {}
        self.drops_by_flow: Dict[str, float] = {}
        self.in_time = IOTimeCounter()
        self.out_time = IOTimeCounter()
        self._pending_update_cost_s = 0.0
        self._version = 0
        self._snap_version = -1
        self._snap_base: Dict[str, float] = {}

    @property
    def version(self) -> int:
        """Monotonic mutation counter; advances on every datapath update."""
        return self._version

    # -- datapath updates ---------------------------------------------------

    def count_rx(self, pkts: float, nbytes: float) -> None:
        """Record traffic read by the element's input method."""
        self.rx_pkts += pkts
        self.rx_bytes += nbytes
        self._version += 1
        self._charge(simple=2.0 * pkts)

    def count_tx(self, pkts: float, nbytes: float) -> None:
        """Record traffic emitted by the element's output method."""
        self.tx_pkts += pkts
        self.tx_bytes += nbytes
        self._version += 1
        self._charge(simple=2.0 * pkts)

    def count_drop(
        self, location: str, pkts: float, nbytes: float, flow_id: Optional[str] = None
    ) -> None:
        """Record packets discarded at a named drop location."""
        self.drops[location] = self.drops.get(location, 0.0) + pkts
        self.drop_bytes[location] = self.drop_bytes.get(location, 0.0) + nbytes
        if flow_id is not None:
            self.drops_by_flow[flow_id] = self.drops_by_flow.get(flow_id, 0.0) + pkts
        self._version += 1
        self._charge(simple=2.0 * pkts)

    def count_in_time(self, elapsed_s: float, calls: float = 1.0) -> None:
        self.in_time.add(elapsed_s, calls)
        self._version += 1
        self._charge(time=calls)

    def count_out_time(self, elapsed_s: float, calls: float = 1.0) -> None:
        self.out_time.add(elapsed_s, calls)
        self._version += 1
        self._charge(time=calls)

    # -- overhead accounting -------------------------------------------------

    def _charge(self, simple: float = 0.0, time: float = 0.0) -> None:
        self._pending_update_cost_s += self.overhead.cost_for(simple, time)

    def drain_update_cost(self) -> float:
        """Return and clear the CPU-seconds owed for counter updates.

        The hosting element calls this once per tick and charges the result
        against its CPU budget, which is how the simulator reproduces the
        instrumentation overhead measured in Section 7.4.
        """
        cost = self._pending_update_cost_s
        self._pending_update_cost_s = 0.0
        return cost

    # -- views ----------------------------------------------------------------

    @property
    def total_drops(self) -> float:
        return sum(self.drops.values())

    @property
    def total_drop_bytes(self) -> float:
        return sum(self.drop_bytes.values())

    def snapshot(self) -> Dict[str, float]:
        """Flat attribute/value view, matching the agent's record format.

        Drop locations appear as ``drops.<location>`` attributes; the
        aggregate as ``drops``.  Flow-level attribution appears as
        ``drops_flow.<flow_id>``.

        Copy-on-read is cheap: the flat view is rebuilt only when the
        counters changed since the previous read (``version`` tracks
        that); an unchanged set hands out a shallow copy of the cached
        base.
        """
        if self._snap_version != self._version:
            snap: Dict[str, float] = {
                "rx_pkts": self.rx_pkts,
                "rx_bytes": self.rx_bytes,
                "tx_pkts": self.tx_pkts,
                "tx_bytes": self.tx_bytes,
                "drops": self.total_drops,
                "drop_bytes": self.total_drop_bytes,
                "in_time": self.in_time.total_s,
                "out_time": self.out_time.total_s,
            }
            for location, pkts in self.drops.items():
                snap[f"drops.{location}"] = pkts
            for flow_id, pkts in self.drops_by_flow.items():
                snap[f"drops_flow.{flow_id}"] = pkts
            self._snap_base = snap
            self._snap_version = self._version
        return dict(self._snap_base)

    def reset(self) -> None:
        self.rx_pkts = self.rx_bytes = 0.0
        self.tx_pkts = self.tx_bytes = 0.0
        self.drops.clear()
        self.drop_bytes.clear()
        self.drops_by_flow.clear()
        self.in_time.reset()
        self.out_time.reset()
        self._pending_update_cost_s = 0.0
        self._version += 1


def diff_snapshots(
    before: Mapping[str, float],
    after: Mapping[str, float],
    attrs: Optional[Iterable[str]] = None,
) -> Dict[str, float]:
    """Per-attribute difference between two counter snapshots.

    Counters are monotonic, so the difference over an interval is the
    activity within it; this is the primitive behind GetThroughput,
    GetPktLoss and GetAvgPktSize (Figure 6).
    """
    keys = list(attrs) if attrs is not None else sorted(set(before) | set(after))
    return {k: after.get(k, 0.0) - before.get(k, 0.0) for k in keys}
