"""Operator-defined counter extensions (Sections 4.1-4.2).

The paper's interface is deliberately extensible: "Operators can
implement more complicated statistics at an element such as packet size
distribution tracking if they can accept the resulting performance
impact", and adding one means (1) adding the counter into the element,
(2) teaching the agent to fetch it — which the unified record format
makes automatic here, since custom counters publish flat attributes into
the element snapshot.

:class:`CustomCounter` is the plug-in protocol; attach instances with
``Element.add_custom_counter``.  Each observation charges a configurable
CPU cost against the element (the "resulting performance impact").

:class:`PacketSizeHistogram` is the paper's own example, implemented as
log2-bucketed counts — enough to distinguish a 64-byte flood from MTU
traffic at the backlog, the disambiguation hint the Table-1 rule book
asks for.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.simnet.packet import PacketBatch


class CustomCounter:
    """Protocol for operator-defined per-element statistics.

    Subclasses implement :meth:`observe` (called once per processed
    batch) and :meth:`snapshot` (flat attribute/value pairs merged into
    the element's record under ``<name>.<attr>``).  ``update_cost_s``
    is charged to the element's CPU budget per observation.
    """

    #: CPU cost per observation, seconds.  Defaults to the simple-counter
    #: cost; heavier statistics should raise it.
    update_cost_s: float = 3e-9

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("custom counter name must be non-empty")
        self.name = name

    def observe(self, batch: PacketBatch) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def snapshot(self) -> Dict[str, float]:  # pragma: no cover - protocol
        raise NotImplementedError


class PacketSizeHistogram(CustomCounter):
    """Log2-bucketed packet-size distribution (the Section-4.1 example).

    Buckets are upper-bounded powers of two from 64 B to ``max_bytes``;
    a batch contributes its packet count to the bucket of its average
    packet size (batches are size-homogeneous by construction).
    """

    #: Two clock-free table updates per observation, still cheap.
    update_cost_s = 6e-9

    def __init__(self, name: str = "pkt_size_hist", max_bytes: float = 65536.0):
        super().__init__(name)
        self.bounds: List[float] = []
        bound = 64.0
        while bound < max_bytes:
            self.bounds.append(bound)
            bound *= 2
        self.bounds.append(max_bytes)
        self.counts: List[float] = [0.0] * len(self.bounds)
        self.total_pkts = 0.0
        self.total_bytes = 0.0

    def observe(self, batch: PacketBatch) -> None:
        if batch.pkts <= 0:
            return
        size = batch.avg_packet_bytes
        idx = min(
            len(self.bounds) - 1,
            max(0, int(math.ceil(math.log2(max(size, 1.0) / 64.0)))),
        )
        self.counts[idx] += batch.pkts
        self.total_pkts += batch.pkts
        self.total_bytes += batch.nbytes

    def snapshot(self) -> Dict[str, float]:
        snap = {
            f"le_{int(bound)}": count
            for bound, count in zip(self.bounds, self.counts)
        }
        snap["total_pkts"] = self.total_pkts
        snap["avg_bytes"] = (
            self.total_bytes / self.total_pkts if self.total_pkts > 0 else 0.0
        )
        return snap

    def fraction_below(self, bound_bytes: float) -> float:
        """Share of packets at or below ``bound_bytes`` — the small-packet
        test an operator runs on backlog-enqueue drops."""
        if self.total_pkts <= 0:
            return 0.0
        acc = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if bound <= bound_bytes:
                acc += count
        return acc / self.total_pkts


class FlowActivityCounter(CustomCounter):
    """Distinct-flow activity tracking (another one-page extension).

    Counts bytes per flow id; exposes the active flow count and the max
    single-flow share — the elephant-flow spotting an operator might
    bolt onto a vswitch rule.
    """

    update_cost_s = 10e-9

    def __init__(self, name: str = "flow_activity", top_k: int = 4) -> None:
        super().__init__(name)
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1: {top_k!r}")
        self.top_k = top_k
        self.bytes_by_flow: Dict[str, float] = {}

    def observe(self, batch: PacketBatch) -> None:
        fid = batch.flow.flow_id
        self.bytes_by_flow[fid] = self.bytes_by_flow.get(fid, 0.0) + batch.nbytes

    def snapshot(self) -> Dict[str, float]:
        total = sum(self.bytes_by_flow.values())
        snap: Dict[str, float] = {
            "active_flows": float(len(self.bytes_by_flow)),
            "total_bytes": total,
        }
        ranked = sorted(self.bytes_by_flow.items(), key=lambda kv: -kv[1])
        for i, (fid, nbytes) in enumerate(ranked[: self.top_k]):
            snap[f"top{i}_bytes"] = nbytes
        if total > 0 and ranked:
            snap["max_flow_share"] = ranked[0][1] / total
        return snap
