"""Structured event log for the PerfSight pipeline itself.

Events are the discrete, low-rate side of self-observability: a health
state transition, a sync that failed, an operator action.  Each event
is a name plus structured fields (never a formatted string — consumers
filter and aggregate, humans get rendering at the edge), a severity,
and a wall-clock timestamp.  Retention is a bounded ring buffer, so an
event storm degrades to losing *old* events instead of eating memory —
the same posture as the span recorder.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

DEBUG = "debug"
INFO = "info"
WARNING = "warning"
ERROR = "error"

#: Severities in increasing order of urgency.
SEVERITIES = (DEBUG, INFO, WARNING, ERROR)

_RANK = {s: i for i, s in enumerate(SEVERITIES)}

#: Default ring-buffer retention for events.
DEFAULT_MAX_EVENTS = 4096


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    name: str
    severity: str
    ts: float
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "severity": self.severity,
            "ts": self.ts,
            **self.fields,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class EventLog:
    """Bounded, severity-levelled sink of structured events."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events!r}")
        self._events: deque = deque(maxlen=max_events)
        self._clock = clock
        self.emitted = 0
        self.by_severity: Dict[str, int] = {s: 0 for s in SEVERITIES}

    def emit(self, name: str, severity: str = INFO, **fields) -> Event:
        if severity not in _RANK:
            raise ValueError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        event = Event(name=name, severity=severity, ts=self._clock(), fields=fields)
        self._events.append(event)
        self.emitted += 1
        self.by_severity[severity] += 1
        return event

    # -- access -------------------------------------------------------------------

    def events(
        self,
        name: Optional[str] = None,
        min_severity: str = DEBUG,
    ) -> List[Event]:
        """Retained events, oldest first, filtered by name/severity."""
        threshold = _RANK[min_severity]
        return [
            e
            for e in self._events
            if _RANK[e.severity] >= threshold and (name is None or e.name == name)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def to_json_lines(self, min_severity: str = DEBUG) -> str:
        """The retained events as newline-delimited JSON."""
        return "\n".join(e.to_json() for e in self.events(min_severity=min_severity))
