"""Self-observability plane: metrics, trace spans and structured events.

The instrumentation contract, in order of importance:

1. **Near-free when disabled.**  By default no hub is installed and
   every facade call below is a global load, a None check and a return
   — the collection hot path (``Agent.poll_once`` through
   ``Channel.read_versioned``) must not pay for telemetry nobody asked
   for.  ``benchmarks/test_perf_obs.py`` holds this to < 5% of the
   sweep cost, our analog of the paper's Table-2 "the counters are
   cheap" argument.
2. **One switch.**  ``install()`` puts a process-wide
   :class:`Observability` hub in place; every instrumented module picks
   it up on its next call — no plumbing a registry through ten
   constructors.  ``installed()`` scopes a hub to a ``with`` block for
   tests and the CLI.
3. **Spans propagate.**  The active span's :class:`TraceContext` rides
   the agent-controller protocol frames, so a controller-side query
   span and the agent-side handler span share one trace id (see
   :mod:`repro.obs.spans`).

Instrumentation sites call the module-level facade
(``obs.observe(...)``, ``obs.span(...)``, ``obs.event(...)``) rather
than holding a registry, precisely so the disabled path stays a single
None check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import (
    DEBUG,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Event,
    EventLog,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DETECTION_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanRecorder, TraceContext

__all__ = [
    "DEBUG", "INFO", "WARNING", "ERROR", "SEVERITIES",
    "Event", "EventLog",
    "Counter", "Gauge", "Histogram", "MetricsError", "MetricsRegistry",
    "DEFAULT_BUCKETS", "DETECTION_LATENCY_BUCKETS",
    "Span", "SpanRecorder", "TraceContext",
    "Observability", "install", "uninstall", "installed", "current",
    "enabled", "counter", "gauge", "observe", "event", "span",
    "span_from_wire", "current_trace", "start_span", "attached",
]


class Observability:
    """One hub bundling the three sinks the pipeline reports into."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanRecorder()
        self.events = events if events is not None else EventLog()


class _NullSpan:
    """The shared do-nothing span handed out while no hub is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, key: str, value: object) -> "_NullSpan":
        return self

    def start(self) -> "_NullSpan":
        return self

    def finish(self, status: Optional[str] = None) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

#: The installed hub, or None (the default: all facade calls no-op).
_HUB: Optional[Observability] = None


def install(hub: Optional[Observability] = None) -> Observability:
    """Install ``hub`` (or a fresh one) process-wide; returns it."""
    global _HUB
    if hub is None:
        hub = Observability()
    _HUB = hub
    return hub


def uninstall() -> None:
    """Remove the installed hub; instrumentation reverts to no-ops."""
    global _HUB
    _HUB = None


def current() -> Optional[Observability]:
    return _HUB


def enabled() -> bool:
    return _HUB is not None


@contextmanager
def installed(hub: Optional[Observability] = None) -> Iterator[Observability]:
    """Scope a hub to a ``with`` block, restoring the previous one after."""
    global _HUB
    previous = _HUB
    active = hub if hub is not None else Observability()
    _HUB = active
    try:
        yield active
    finally:
        _HUB = previous


# -- the instrumentation facade (hot-path safe) -----------------------------------


def counter(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a counter — no-op without a hub."""
    hub = _HUB
    if hub is not None:
        hub.metrics.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels) -> None:
    """Set a gauge — no-op without a hub."""
    hub = _HUB
    if hub is not None:
        hub.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, buckets=None, **labels) -> None:
    """Observe into a histogram — no-op without a hub.

    ``buckets`` picks a bucket preset (e.g.
    :data:`DETECTION_LATENCY_BUCKETS`) and is honored only by the call
    that first registers the family, matching the registry semantics.
    """
    hub = _HUB
    if hub is not None:
        hub.metrics.histogram(name, buckets=buckets, **labels).observe(value)


def event(name: str, severity: str = INFO, **fields) -> None:
    """Emit a structured event — no-op without a hub."""
    hub = _HUB
    if hub is not None:
        hub.events.emit(name, severity, **fields)


def span(name: str, **attrs):
    """A nested span context manager — a shared no-op without a hub."""
    hub = _HUB
    if hub is None:
        return _NULL_SPAN
    return hub.spans.span(name, **attrs)


def span_from_wire(name: str, wire_ctx: object, **attrs):
    """A handler span parented on a peer's wire trace field.

    ``wire_ctx`` is the raw (untrusted) value of the frame's trace
    field; malformed input roots a fresh trace instead of failing the
    request.  No-op without a hub.
    """
    hub = _HUB
    if hub is None:
        return _NULL_SPAN
    return hub.spans.span_from_wire(name, TraceContext.from_wire(wire_ctx), **attrs)


def start_span(name: str, **attrs):
    """A started *detached* span for long-lived work — no-op without a hub.

    Unlike :func:`span` it is not a context manager: the caller keeps it
    open across arbitrarily many calls (an incident spanning many
    monitoring rounds), nests children under it via :func:`attached`,
    and closes it with ``finish()``.
    """
    hub = _HUB
    if hub is None:
        return _NULL_SPAN
    return hub.spans.start_span(name, **attrs)


@contextmanager
def attached(span_obj) -> Iterator[object]:
    """Make a detached span current for the block — no-op without a hub."""
    hub = _HUB
    if hub is None or isinstance(span_obj, _NullSpan):
        yield span_obj
        return
    with hub.spans.attach(span_obj):
        yield span_obj


def current_trace() -> Optional[TraceContext]:
    """The active span's wire context, or None (no hub / no span)."""
    hub = _HUB
    if hub is None:
        return None
    return hub.spans.current_context()
