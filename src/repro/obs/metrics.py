"""Self-observability metrics: counters, gauges and histograms.

PerfSight's evaluation is largely about the tool's *own* cost — Table 2
prices the time counters, Figure 9 the collection channels, Figure 16
the agent CPU.  A reproduction that cannot measure itself cannot defend
those numbers, so this module gives the pipeline a small metrics plane
of its own: a :class:`MetricsRegistry` of named families (counter,
gauge, histogram) with Prometheus-style text exposition.

Naming and cardinality follow the Prometheus conventions, scoped down:

* metric names are ``perfsight_<component>_<what>_<unit>`` (snake case,
  base units — seconds, bytes);
* labels identify bounded dimensions only — a channel *kind* (6 values),
  a wire *op* (5), a *machine* (fleet-sized) — never per-element or
  per-flow ids, whose cardinality grows with the workload.  A family
  refuses to grow past :data:`MAX_CHILDREN` label combinations so a
  mislabelled hot path fails loudly instead of eating memory.

Histograms use fixed buckets (no per-sample storage) so observation is
O(buckets) in the worst case and O(log buckets) via bisect; quantiles
are estimated by linear interpolation within the winning bucket, the
same estimate Prometheus's ``histogram_quantile`` computes server-side.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Refuse more label combinations than this per family (cardinality guard).
MAX_CHILDREN = 256

#: Default histogram bucket upper bounds, seconds: spans the micro-second
#: collection channels (Figure 9) through multi-second wire retries.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Bucket preset for detection-latency style histograms measured in
#: *monitoring rounds* rather than seconds.  The streaming daemon
#: detects injected faults within single-digit rounds, so the
#: micro-second wire buckets above would collapse every observation
#: into one bucket; these resolve 1..64 rounds instead.
DETECTION_LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(Exception):
    """Misuse of the metrics registry (bad name, type clash, blow-up)."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count (resets only with its registry)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter increments must be >= 0: {amount!r}")
        self.value += amount


class Gauge:
    """A value that goes up and down (a level, a staleness age)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus-style quantile estimates."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        #: One slot per finite bound plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (``q`` in [0, 1]) by bucket interpolation.

        Within the winning bucket the estimate interpolates linearly
        between its lower and upper bound; the overflow bucket is clamped
        to the largest observation (there is no upper bound to lerp to).
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be within [0, 1]: {q!r}")
        if self.count == 0:
            raise MetricsError("quantile of an empty histogram")
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if i == len(self.bounds):  # the +Inf bucket
                    return self.max
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                frac = (rank - cumulative) / n
                return min(lower + (upper - lower) * frac, self.max)
            cumulative += n
        return self.max


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: shared type/help, per-label children."""

    __slots__ = ("name", "type", "help", "buckets", "children")

    def __init__(
        self, name: str, mtype: str, help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.type = mtype
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelKey, object] = {}

    def child(self, labels: Dict[str, object]):
        key = _label_key(labels)
        metric = self.children.get(key)
        if metric is None:
            if len(self.children) >= MAX_CHILDREN:
                raise MetricsError(
                    f"family {self.name!r} exceeded {MAX_CHILDREN} label "
                    f"combinations — label values must be bounded "
                    f"(kinds, ops, machines), not per-element ids"
                )
            for k, _ in key:
                if not _LABEL_RE.match(k):
                    raise MetricsError(f"bad label name {k!r} on {self.name!r}")
            if self.type == "histogram":
                metric = Histogram(self.buckets or DEFAULT_BUCKETS)
            else:
                metric = _TYPES[self.type]()
            self.children[key] = metric
        return metric


class MetricsRegistry:
    """Registry of metric families keyed by name.

    ``counter(name, **labels)`` (and friends) get-or-create, so
    instrumentation sites need no setup step; re-registering a name as a
    different type raises.  ``render_prometheus`` emits the text
    exposition format; ``snapshot`` a JSON-able dict for the CLI.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _family(
        self, name: str, mtype: str, help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise MetricsError(f"bad metric name: {name!r}")
            family = self._families[name] = _Family(name, mtype, help_text, buckets)
        elif family.type != mtype:
            raise MetricsError(
                f"metric {name!r} already registered as {family.type}, "
                f"not {mtype}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    # -- get-or-create accessors ---------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._family(name, "counter", help).child(labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._family(name, "gauge", help).child(labels)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "",
        buckets: Optional[Iterable[float]] = None, **labels,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else None
        return self._family(name, "histogram", help, bounds).child(labels)  # type: ignore[return-value]

    # -- introspection ------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._families)

    def get(self, name: str, **labels):
        """An existing metric, or None — never creates (for tests/CLI)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def children(self, name: str) -> Dict[LabelKey, object]:
        family = self._families.get(name)
        return dict(family.children) if family is not None else {}

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    # -- exposition -----------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The text exposition format, families sorted by name."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.type}")
            for key in sorted(family.children):
                metric = family.children[key]
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, n in zip(metric.bounds, metric.bucket_counts):
                        cumulative += n
                        labels = _render_labels(key, ("le", _format_value(bound)))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _render_labels(key, ("le", "+Inf"))
                    lines.append(f"{name}_bucket{labels} {metric.count}")
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(metric.sum)}"
                    )
                    lines.append(f"{name}_count{_render_labels(key)} {metric.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} "
                        f"{_format_value(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, dict]:
        """JSON-able dump: {name: {type, help, series: [{labels, ...}]}}."""
        out: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.children):
                metric = family.children[key]
                entry: Dict[str, object] = {"labels": dict(key)}
                if isinstance(metric, Histogram):
                    entry.update(
                        count=metric.count,
                        sum=metric.sum,
                        mean=metric.mean,
                        min=metric.min if metric.count else None,
                        max=metric.max if metric.count else None,
                        p50=metric.quantile(0.5) if metric.count else None,
                        p99=metric.quantile(0.99) if metric.count else None,
                    )
                else:
                    entry["value"] = metric.value
                series.append(entry)
            out[name] = {"type": family.type, "help": family.help, "series": series}
        return out
