"""Lightweight trace spans with cross-wire parent/child linking.

A span measures one named stretch of real (wall-clock) work in the
PerfSight pipeline itself — a diagnosis run, a wire call, an agent
sweep.  Spans nest through a context variable (each new span adopts the
innermost active one as its parent), and carry 64-bit hex trace/span
ids Dapper-style: every span in one causal chain shares a ``trace_id``.

The ids travel across the agent-controller wire: the client stamps its
active span's :class:`TraceContext` into the request frame, and the
server starts its handler span *from* that context — same trace id,
``parent_id`` pointing at the client span — so a controller-side query
span and the agent-side handler span form one tree even though they
were recorded in different threads (or, in a real deployment, different
processes).

Finished spans land in the recorder's bounded ring buffer; nothing is
kept per-span beyond the dataclass, and when no recorder is installed
(see :mod:`repro.obs`) span creation is a shared no-op.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional

#: Default ring-buffer retention for finished spans.
DEFAULT_MAX_SPANS = 4096

#: Wire field names of a serialized trace context (kept short: the
#: context rides in every instrumented protocol frame).
WIRE_TRACE_ID = "trace_id"
WIRE_SPAN_ID = "span_id"

_CURRENT: ContextVar[Optional["Span"]] = ContextVar("perfsight_span", default=None)


@dataclass(frozen=True)
class TraceContext:
    """The (trace_id, span_id) pair that crosses process boundaries."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {WIRE_TRACE_ID: self.trace_id, WIRE_SPAN_ID: self.span_id}

    @classmethod
    def from_wire(cls, raw: object) -> Optional["TraceContext"]:
        """Parse a wire trace field; malformed input yields None.

        Trace propagation is best-effort telemetry: a peer that sends a
        garbled context must not break the request it is attached to.
        """
        if not isinstance(raw, Mapping):
            return None
        trace_id = raw.get(WIRE_TRACE_ID)
        span_id = raw.get(WIRE_SPAN_ID)
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed, attributed stretch of pipeline work.

    Use as a context manager (via :meth:`SpanRecorder.span`); entering
    makes it the innermost active span, exiting records the duration and
    ships it to the recorder's ring buffer.  ``set`` attaches attributes
    mid-flight (verdict provenance, batch sizes, retry counts).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs", "status",
        "remote_parent", "start_s", "end_s", "_recorder", "_token",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, object],
        remote_parent: bool = False,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self.remote_parent = remote_parent
        self.start_s = 0.0
        self.end_s = 0.0
        self._recorder = recorder
        self._token = None

    def set(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def start(self) -> "Span":
        """Start the clock without making the span current.

        This is the manual half of the detached-span lifecycle used for
        long-lived work (an open incident spanning many daemon rounds):
        the span outlives any single call stack, so it cannot ride the
        context variable the way ``with`` spans do.  Pair with
        :meth:`finish`, and with :meth:`SpanRecorder.attach` to nest
        children under it from arbitrary call sites in between.
        """
        self.start_s = time.perf_counter()
        return self

    def finish(self, status: Optional[str] = None) -> "Span":
        """Close and record a detached span (one begun via :meth:`start`).

        Must not be combined with the context-manager protocol on the
        same span — ``__exit__`` already records, and a second record
        would duplicate the span in the ring.
        """
        self.end_s = time.perf_counter()
        if status is not None:
            self.status = status
        self._recorder._record(self)
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_s = time.perf_counter()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._recorder._record(self)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "remote_parent": self.remote_parent,
            "status": self.status,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"span={self.span_id[:8]}, parent={str(self.parent_id)[:8]}, "
            f"{self.duration_s * 1e3:.3f}ms)"
        )


class SpanRecorder:
    """Creates spans and retains the finished ones in a ring buffer."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1: {max_spans!r}")
        self._finished: deque = deque(maxlen=max_spans)
        self._rng = random.Random()
        self._lock = threading.Lock()
        self.started = 0

    def _new_id(self) -> str:
        with self._lock:
            return f"{self._rng.getrandbits(64):016x}"

    # -- span creation ------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A new span nested under the innermost active one (if any)."""
        parent = _CURRENT.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_id(), None
        self.started += 1
        return Span(self, name, trace_id, self._new_id(), parent_id, attrs)

    def span_from_wire(
        self, name: str, ctx: Optional[TraceContext], **attrs
    ) -> Span:
        """A handler-side span parented on a remote caller's context.

        With ``ctx`` None (caller not tracing, or garbled field) this
        degrades to :meth:`span` — the handler still gets timed, it just
        roots a fresh trace.
        """
        if ctx is None:
            return self.span(name, **attrs)
        self.started += 1
        return Span(
            self, name, ctx.trace_id, self._new_id(), ctx.span_id, attrs,
            remote_parent=True,
        )

    def start_span(self, name: str, **attrs) -> Span:
        """A started *detached* span: parented on the ambient context but
        not made current.

        The caller owns its lifecycle — :meth:`Span.finish` records it,
        and :meth:`attach` temporarily makes it current so child spans
        created elsewhere nest under it.  This is how an incident that
        stays open across many monitoring rounds becomes one trace.
        """
        return self.span(name, **attrs).start()

    @contextmanager
    def attach(self, span: Span) -> Iterator[Span]:
        """Make a detached span current for the block, without recording.

        Children opened inside the block parent on ``span``; leaving the
        block restores the previous context and leaves ``span`` open.
        """
        token = _CURRENT.set(span)
        try:
            yield span
        finally:
            _CURRENT.reset(token)

    def current(self) -> Optional[Span]:
        """The innermost active span in this thread/context, if any."""
        return _CURRENT.get()

    def current_context(self) -> Optional[TraceContext]:
        span = _CURRENT.get()
        return span.context if span is not None else None

    def _record(self, span: Span) -> None:
        self._finished.append(span)

    # -- access to finished spans ---------------------------------------------------

    def finished(self) -> List[Span]:
        """Finished spans, oldest first (bounded by the ring)."""
        return list(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def by_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self._finished if s.trace_id == trace_id]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self._finished if s.name == name]

    def slowest(self, n: int = 10) -> List[Span]:
        return sorted(self._finished, key=lambda s: -s.duration_s)[:n]

    def render_tree(self, trace_id: str) -> str:
        """One trace's spans as an indented tree (roots first).

        Spans that crossed the wire are marked ``^wire``.  Spans whose
        parent is not in the buffer (evicted, or recorded in another
        process) render as roots.
        """
        spans = self.by_trace(trace_id)
        by_parent: Dict[Optional[str], List[Span]] = {}
        ids = {s.span_id for s in spans}
        for s in spans:
            key = s.parent_id if s.parent_id in ids else None
            by_parent.setdefault(key, []).append(s)
        lines: List[str] = []

        def walk(parent_key: Optional[str], depth: int) -> None:
            for s in sorted(by_parent.get(parent_key, []), key=lambda x: x.start_s):
                marker = " ^wire" if s.remote_parent else ""
                attrs = ", ".join(
                    f"{k}={v}" for k, v in sorted(s.attrs.items())
                )
                attrs = f" [{attrs}]" if attrs else ""
                lines.append(
                    f"{'  ' * depth}{s.name} {s.duration_s * 1e3:.3f}ms"
                    f"{marker}{attrs}"
                )
                walk(s.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)
