"""Command-line front end: ``python -m repro.cli <command>``.

Runs the reproduction's experiments and demos from a shell:

* ``quickstart``        — the examples/quickstart.py walkthrough
* ``fig12 --case X``    — one Figure-12 propagation case with the b/t table
* ``fig10``             — the backlog-contention experiment summary
* ``table1``            — rebuild the Table-1 rule book
* ``fig16``             — poll-frequency vs agent CPU table
* ``list``              — the experiment inventory with paper references
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENTS = {
    "fig03": "memory-bandwidth vs network throughput tradeoff (Figure 3)",
    "fig08": "functional validation timeline (Figure 8) [slow: ~2 min]",
    "fig09": "agent response time per channel (Figure 9)",
    "fig10": "pCPU backlog contention (Figure 10)",
    "fig11": "memory-bandwidth contention (Figure 11)",
    "fig12": "root cause under propagation (Figure 12)",
    "fig13": "multi-tenant operator workflow (Figures 13-14)",
    "table1": "resource-shortage/drop-location rule book (Table 1)",
    "table2": "time-counter overhead (Table 2)",
    "fig15": "overhead across middlebox types (Figure 15)",
    "fig16": "poll frequency vs agent CPU (Figure 16)",
}


def cmd_list(args: argparse.Namespace) -> int:
    print("experiments (run the benchmarks for full reproduction):")
    for name, desc in EXPERIMENTS.items():
        print(f"  {name:8s} {desc}")
    return 0


def cmd_quickstart(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
        return 0
    print("examples/quickstart.py not found next to the package", file=sys.stderr)
    return 1


def cmd_fig12(args: argparse.Namespace) -> int:
    from repro.scenarios.fig12_propagation import (
        CASES,
        EXPECTED_ROOT_CAUSE,
        build_and_run,
    )

    cases = CASES if args.case == "all" else (args.case,)
    for case in cases:
        result = build_and_run(case)
        print(f"== {case}")
        names = ["client", "lb", "cf1", "nfs", "server1"]
        print("          " + "".join(f"{n:>10s}" for n in names))
        print(
            "  b/t_in  " + "".join(f"{result.b_over_ti_mbps[n]:10.1f}" for n in names)
        )
        print(
            "  b/t_out " + "".join(f"{result.b_over_to_mbps[n]:10.1f}" for n in names)
        )
        print(
            f"  root causes: {result.report.root_causes} "
            f"(paper: {EXPECTED_ROOT_CAUSE[case]})"
        )
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.scenarios.fig10_backlog_contention import FLOOD_START_S, build_and_run

    result = build_and_run()
    before = result.mean_flow1_mbps(3, FLOOD_START_S)
    after = result.mean_flow1_mbps(FLOOD_START_S + 2, 25)
    print(f"flow1: {before:.0f} Mbps before the flood, {after:.0f} Mbps during")
    print(f"NIC saturated: {result.nic_saturated}")
    print(f"drop locations: { {k: round(v) for k, v in result.drops_by_location.items() if v > 10} }")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.scenarios.table1_rulebook import run_all

    print(f"{'resource in shortage':26s} {'observed class':16s} verdict")
    for row in run_all():
        print(
            f"{row.resource:26s} {row.dominant_class:16s} "
            f"{'/'.join(row.verdict_resources)} ({row.verdict_scope})"
        )
    return 0


def cmd_fig16(args: argparse.Namespace) -> int:
    from repro.scenarios.overhead import run_fig16

    print(f"{'poll Hz':>8s} {'agent CPU %':>12s}")
    for hz, pct in run_fig16():
        print(f"{hz:8.0f} {pct:12.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="PerfSight reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment inventory").set_defaults(
        fn=cmd_list
    )
    sub.add_parser("quickstart", help="run the quickstart walkthrough").set_defaults(
        fn=cmd_quickstart
    )
    p12 = sub.add_parser("fig12", help="Figure-12 propagation case(s)")
    p12.add_argument(
        "--case",
        choices=("overloaded_server", "underloaded_client", "buggy_nfs", "all"),
        default="all",
    )
    p12.set_defaults(fn=cmd_fig12)
    sub.add_parser("fig10", help="Figure-10 backlog contention").set_defaults(
        fn=cmd_fig10
    )
    sub.add_parser("table1", help="rebuild the Table-1 rule book").set_defaults(
        fn=cmd_table1
    )
    sub.add_parser("fig16", help="poll frequency vs agent CPU").set_defaults(
        fn=cmd_fig16
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
