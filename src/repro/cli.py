"""Command-line front end: ``python -m repro.cli <command>``.

Runs the reproduction's experiments and demos from a shell:

* ``quickstart``        — the examples/quickstart.py walkthrough
* ``fig12 --case X``    — one Figure-12 propagation case with the b/t table
* ``fig10``             — the backlog-contention experiment summary
* ``table1``            — rebuild the Table-1 rule book
* ``fig16``             — poll-frequency vs agent CPU table
* ``obs``               — self-observability demo: spans/metrics/events
* ``fleet``             — concurrent fleet collection demo over real TCP
* ``scale``             — hierarchical control plane demo (zones + root)
* ``chaos``             — self-healing demo: zone kill/restart + root
  partition with failover, re-homing and circuit breakers
* ``list``              — the experiment inventory with paper references
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENTS = {
    "fig03": "memory-bandwidth vs network throughput tradeoff (Figure 3)",
    "fig08": "functional validation timeline (Figure 8) [slow: ~2 min]",
    "fig09": "agent response time per channel (Figure 9)",
    "fig10": "pCPU backlog contention (Figure 10)",
    "fig11": "memory-bandwidth contention (Figure 11)",
    "fig12": "root cause under propagation (Figure 12)",
    "fig13": "multi-tenant operator workflow (Figures 13-14)",
    "table1": "resource-shortage/drop-location rule book (Table 1)",
    "table2": "time-counter overhead (Table 2)",
    "fig15": "overhead across middlebox types (Figure 15)",
    "fig16": "poll frequency vs agent CPU (Figure 16)",
    "obs": "self-observability of the pipeline: trace spans across the "
           "wire, metrics registry, structured events (§6 analog)",
    "fleet": "concurrent fleet collection: serial vs fanned-out refresh "
             "over real TCP agents, plus a fleet-wide Algorithm-1 scan",
    "scale": "hierarchical control plane: push-mode agents, zone "
             "aggregators pushing roll-ups to a fleet root over TCP, "
             "rebalance on zone leave, verdicts equal to a flat "
             "controller",
    "chaos": "self-healing fleet: kill a zone mid-diagnosis, watch the "
             "root detect it, fail its shard over, re-home agents and "
             "reconverge to the flat controller's verdicts; then a root "
             "partition exercises staleness and circuit breakers",
    "watch": "always-on streaming diagnosis: the DiagnosisDaemon's "
             "coarse monitoring loop over real TCP, an injected fault "
             "tripping the detector, two-phase escalation to "
             "Algorithm-1/2, and the incident rendered as one linked "
             "trace",
}


def cmd_list(args: argparse.Namespace) -> int:
    print("experiments (run the benchmarks for full reproduction):")
    for name, desc in EXPERIMENTS.items():
        print(f"  {name:8s} {desc}")
    return 0


def cmd_quickstart(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
        return 0
    print("examples/quickstart.py not found next to the package", file=sys.stderr)
    return 1


def cmd_fig12(args: argparse.Namespace) -> int:
    from repro.scenarios.fig12_propagation import (
        CASES,
        EXPECTED_ROOT_CAUSE,
        build_and_run,
    )

    cases = CASES if args.case == "all" else (args.case,)
    for case in cases:
        result = build_and_run(case)
        print(f"== {case}")
        names = ["client", "lb", "cf1", "nfs", "server1"]
        print("          " + "".join(f"{n:>10s}" for n in names))
        print(
            "  b/t_in  " + "".join(f"{result.b_over_ti_mbps[n]:10.1f}" for n in names)
        )
        print(
            "  b/t_out " + "".join(f"{result.b_over_to_mbps[n]:10.1f}" for n in names)
        )
        print(
            f"  root causes: {result.report.root_causes} "
            f"(paper: {EXPECTED_ROOT_CAUSE[case]})"
        )
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.scenarios.fig10_backlog_contention import FLOOD_START_S, build_and_run

    result = build_and_run()
    before = result.mean_flow1_mbps(3, FLOOD_START_S)
    after = result.mean_flow1_mbps(FLOOD_START_S + 2, 25)
    print(f"flow1: {before:.0f} Mbps before the flood, {after:.0f} Mbps during")
    print(f"NIC saturated: {result.nic_saturated}")
    print(f"drop locations: { {k: round(v) for k, v in result.drops_by_location.items() if v > 10} }")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.scenarios.table1_rulebook import run_all

    print(f"{'resource in shortage':26s} {'observed class':16s} verdict")
    for row in run_all():
        print(
            f"{row.resource:26s} {row.dominant_class:16s} "
            f"{'/'.join(row.verdict_resources)} ({row.verdict_scope})"
        )
    return 0


def cmd_fig16(args: argparse.Namespace) -> int:
    from repro.scenarios.overhead import run_fig16

    print(f"{'poll Hz':>8s} {'agent CPU %':>12s}")
    for hz, pct in run_fig16():
        print(f"{hz:8.0f} {pct:12.3f}")
    return 0


def _run_obs_scenario():
    """Quickstart world + one diagnosis over real TCP + one crash arc.

    Returns (report, quality) — run under an installed obs hub so the
    whole pipeline records into it.  Prints nothing (``--json`` mode
    must emit clean JSON).
    """
    from repro.cluster.chains import build_chain
    from repro.core.controller import Controller
    from repro.core.diagnosis import RootCauseLocator
    from repro.core.net.client import RemoteAgentHandle, RetryPolicy
    from repro.core.net.server import AgentServer
    from repro.middleboxes.http import HttpClient, HttpServer
    from repro.middleboxes.proxy import Proxy
    from repro.scenarios.common import Harness
    from repro.workloads.faults import inject_perf_bug

    h = Harness(seed=1)
    machine = h.add_machine("host-1")
    tenant = h.add_tenant("acme")
    client = HttpClient(h.sim, machine.add_vm("vm-client", vnic_bps=100e6), "client")
    proxy = Proxy(h.sim, machine.add_vm("vm-proxy", vnic_bps=100e6), "proxy")
    server = HttpServer(h.sim, machine.add_vm("vm-server", vnic_bps=100e6), "server")
    build_chain([client, proxy, server], tenant.vnet)
    for app in (client, proxy, server):
        h.register_app(app)
    h.advance(1.5)
    inject_perf_bug(proxy, 50.0)
    h.advance(1.0)

    agent = h.agents["host-1"]
    srv = AgentServer(agent).start()
    host, port = srv.address
    handle = RemoteAgentHandle(
        host, port,
        retry=RetryPolicy(
            max_attempts=2, base_delay_s=0.001, max_delay_s=0.005, deadline_s=5.0
        ),
    )
    remote = Controller("obs-demo-controller")
    remote.register_agent("host-1", handle)
    remote.register_tenant(tenant)
    try:
        report = RootCauseLocator(remote, h.advance, window_s=1.0).run("acme")
        # Crash/restart arc: a dead agent degrades health (events +
        # failed-sync metrics), a rebind on the same port recovers it.
        srv.shutdown()
        remote.refresh("host-1")
        srv = AgentServer(agent, host=host, port=port).start()
        remote.refresh("host-1")
        quality = remote.data_quality("host-1", now=h.sim.now)
    finally:
        handle.close()
        srv.shutdown()
    return report, quality


def cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.core.channels import READ_LATENCY_METRIC

    hub = obs.Observability()
    with obs.installed(hub):
        report, quality = _run_obs_scenario()

    diag_spans = hub.spans.by_name("diagnosis.propagation")
    trace_id = diag_spans[-1].trace_id if diag_spans else None

    if args.json:
        print(json.dumps(
            {
                "root_causes": report.root_causes,
                "data_quality": quality.describe(),
                "metrics": hub.metrics.snapshot(),
                "prometheus": hub.metrics.render_prometheus(),
                "spans": [s.to_dict() for s in hub.spans.finished()],
                "trace_id": trace_id,
                "events": [e.to_dict() for e in hub.events.events()],
            },
            indent=2, sort_keys=True, default=str,
        ))
        return 0

    print("== diagnosis over TCP")
    print(report.summary())
    print(f"  data quality after crash/restart arc: {quality.describe()}")

    if trace_id is not None:
        print(f"\n== span tree of the diagnosis run (trace {trace_id[:8]}...)")
        print(hub.spans.render_tree(trace_id))

    print("\n== slowest spans")
    for s in hub.spans.slowest(10):
        print(
            f"  {s.duration_s * 1e3:9.3f}ms {s.name:22s} "
            f"trace={s.trace_id[:8]} span={s.span_id[:8]} "
            f"parent={(s.parent_id or '-')[:8]}"
        )

    print("\n== channel read latency (software Figure 9, simulated seconds)")
    print(f"  {'kind':12s} {'reads':>6s} {'p50':>10s} {'p99':>10s} {'max':>10s}")
    for key, hist in sorted(hub.metrics.children(READ_LATENCY_METRIC).items()):
        kind = dict(key).get("kind", "?")
        print(
            f"  {kind:12s} {hist.count:6d} {hist.quantile(0.5) * 1e3:8.3f}ms "
            f"{hist.quantile(0.99) * 1e3:8.3f}ms {hist.max * 1e3:8.3f}ms"
        )

    print("\n== events")
    for e in hub.events.events():
        print(f"  {e.to_json()}")

    print(
        f"\n== metrics registry: {len(hub.metrics)} series across "
        f"{len(hub.metrics.names())} families (full Prometheus text "
        f"via --json)"
    )
    for name in hub.metrics.names():
        print(f"  {name}")
    return 0


class _DelayedHandle:
    """AgentHandle proxy adding emulated management-network RTT.

    Localhost TCP round trips are ~0.1 ms, far too fast to show why the
    fan-out matters; a real controller sits a management network away
    from its agents.  The delay is injected client-side per exchange so
    the demo's serial-vs-concurrent comparison reflects wide-area
    deployment shape, honestly labeled in the output.
    """

    def __init__(self, handle, latency_s: float) -> None:
        self._handle = handle
        self._latency_s = latency_s
        self.name = handle.name

    def _delay(self) -> None:
        import time

        if self._latency_s > 0:
            time.sleep(self._latency_s)

    def query(self, element_ids=None, attrs=None):
        self._delay()
        return self._handle.query(element_ids, attrs)

    def element_ids(self):
        return self._handle.element_ids()

    def stack_element_ids(self):
        return self._handle.stack_element_ids()

    def collect_delta(self, acked=None):
        self._delay()
        return self._handle.collect_delta(acked)


def _run_fleet_scenario(n_agents: int, latency_s: float):
    """N TCP-served agents; measure serial vs concurrent refresh.

    Returns a JSON-ready dict.  Prints nothing (``--json`` mode must
    emit clean JSON).
    """
    import time

    from repro.core.controller import Controller
    from repro.core.net.client import RemoteAgentHandle, RetryPolicy
    from repro.core.net.server import AgentServer
    from repro.middleboxes.proxy import Proxy
    from repro.scenarios.common import Harness

    h = Harness(seed=3)
    controller = Controller("fleet-demo-controller", max_workers=n_agents)
    servers, handles = [], []
    try:
        for i in range(n_agents):
            name = f"host-{i}"
            machine = h.add_machine(name)
            vm = machine.add_vm("vm0", vcpu_cores=1.0)
            h.register_app(Proxy(h.sim, vm, f"proxy{i}"))
        h.advance(1.0)
        for i in range(n_agents):
            name = f"host-{i}"
            srv = AgentServer(h.agents[name]).start()
            servers.append(srv)
            handle = RemoteAgentHandle(
                *srv.address, name=name,
                retry=RetryPolicy(
                    max_attempts=2, base_delay_s=0.001,
                    max_delay_s=0.005, deadline_s=5.0,
                ),
            )
            handles.append(handle)
            controller.register_agent(name, _DelayedHandle(handle, latency_s))

        controller.refresh()  # warm: full history ships once
        controller.refresh_concurrent()

        t0 = time.perf_counter()
        controller.refresh()
        serial_s = time.perf_counter() - t0

        report = controller.refresh_report()

        fleet = controller.diagnose_fleet(h.advance, window_s=0.5)
        return {
            "agents": n_agents,
            "injected_latency_s": latency_s,
            "serial_refresh_s": serial_s,
            "concurrent_refresh_s": report.wall_s,
            "speedup": serial_s / report.wall_s if report.wall_s > 0 else None,
            "peak_workers": report.peak_workers,
            "machines": {
                name: {
                    "snapshots": entry.snapshots,
                    "ok": entry.ok,
                    "wall_s": entry.wall_s,
                    "health": entry.health_state,
                }
                for name, entry in report.machines.items()
            },
            "diagnosis": {
                "window_s": fleet.window_s,
                "wall_s": fleet.wall_s,
                "degraded_machines": fleet.degraded_machines,
                "worst_machine": fleet.worst_machine,
                "loss_by_machine": fleet.loss_by_machine,
                "summary": fleet.summary(),
            },
        }
    finally:
        for handle in handles:
            handle.close()
        for srv in servers:
            srv.shutdown()


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    result = _run_fleet_scenario(args.agents, args.latency_ms / 1e3)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
        return 0

    print(
        f"== concurrent fleet collection: {result['agents']} TCP agents, "
        f"{result['injected_latency_s'] * 1e3:.0f} ms emulated RTT each"
    )
    print(f"  serial refresh:     {result['serial_refresh_s'] * 1e3:8.1f} ms")
    print(f"  concurrent refresh: {result['concurrent_refresh_s'] * 1e3:8.1f} ms")
    print(
        f"  speedup: {result['speedup']:.1f}x "
        f"(peak {result['peak_workers']} workers)"
    )
    print("\n== per-machine breakdown")
    for name in sorted(result["machines"]):
        m = result["machines"][name]
        status = "ok" if m["ok"] else "FAILED"
        print(
            f"  {name}: {m['snapshots']} snap(s) in {m['wall_s'] * 1e3:6.1f} ms, "
            f"{status}, health={m['health']}"
        )
    print("\n== fleet diagnosis (per-machine Algorithm 1, one shared window)")
    print(result["diagnosis"]["summary"])
    return 0


def _run_scale_scenario(n_machines: int, n_zones: int, window_s: float):
    """Three-tier control plane end to end; returns a JSON-ready dict.

    Agents push deltas to their zone aggregator on change; the zones
    diagnose their shards around ONE shared time advance and push
    scalar roll-ups to the fleet root over real TCP (bin1-negotiated
    ZONE_REPORT frames).  A flat controller diagnoses the same fleet in
    the same interval so the demo can *show* the hierarchy's verdicts
    are equal, not just plausible.  Prints nothing (``--json`` mode
    must emit clean JSON).
    """
    from repro.core.controller import FleetController, ZoneController
    from repro.core.net.client import ZoneClient
    from repro.core.net.server import FleetServer
    from repro.middleboxes.http import HttpServer
    from repro.scenarios.common import Harness
    from repro.simnet.packet import Flow
    from repro.workloads.traffic import ExternalTrafficSource

    if n_machines < 1 or n_zones < 1:
        raise ValueError("need at least one machine and one zone")

    h = Harness(seed=7)
    for i in range(n_machines):
        name = f"host-{i:03d}"
        machine = h.add_machine(name)
        # Every third machine gets a capped VM: a real individual-scope
        # bottleneck verdict for the equality check to bite on.
        capped = 50e6 if i % 3 == 0 else None
        vm = machine.add_vm("vm0", vcpu_cores=1.0, vnic_bps=capped)
        app = HttpServer(h.sim, vm, f"app-{name}", cpu_per_byte=1e-9)
        flow = Flow(f"rx-{name}", dst_vm="vm0", kind="udp")
        vm.bind_udp(flow, app.socket)
        ExternalTrafficSource(
            h.sim, f"src-{name}", flow, machine.inject,
            rate_bps=200e6 if capped else 100e6,
        )
    h.advance(0.5)

    fleet = FleetController("fleet-root")
    fleet.track_machines(h.agents)
    zones = {}
    for z in range(n_zones):
        zone_name = f"zone-{z}"
        fleet.register_zone(zone_name)
        zones[zone_name] = ZoneController(zone_name)
    shard_sizes = {}
    for zone_name, machines in fleet.shards().items():
        shard_sizes[zone_name] = len(machines)
        for name in machines:
            zones[zone_name].register_local_agent(h.agents[name])

    # Tier 1 -> 2: agents push SeriesBlock deltas on change (the poll
    # path stays available as catch-up; overlap dedupes at the mirror).
    for zone in zones.values():
        for name in zone.machines():
            h.agents[name].start_pushing(zone, period_s=0.05)
    h.advance(0.3)

    def hierarchical_round():
        """Split-phase scan: all zones share ONE advance, then report."""
        scans = {z: zc.begin_fleet_scan(window_s) for z, zc in zones.items()}
        h.advance(window_s)
        return {
            z: zones[z].build_zone_report(zones[z].finish_fleet_scan(scan))
            for z, scan in scans.items()
        }

    # Flat baseline over the same interval: open its windows alongside
    # the zones' so every tier measures the identical slice of time.
    flat_scan = h.controller.begin_fleet_scan(window_s)
    zone_scans = {z: zc.begin_fleet_scan(window_s) for z, zc in zones.items()}
    h.advance(window_s)
    flat = h.controller.finish_fleet_scan(flat_scan)
    reports = {
        z: zones[z].build_zone_report(zones[z].finish_fleet_scan(scan))
        for z, scan in zone_scans.items()
    }

    # Tier 2 -> 3: real TCP, one ZoneClient per zone, bin1-negotiated.
    accepted = 0
    with FleetServer(fleet) as server:
        host, port = server.address
        for zone_name, report in reports.items():
            with ZoneClient(host, port, name=f"{zone_name}-link") as link:
                link.subscribe(zone_name)
                if link.push_report(report.to_wire()):
                    accepted += 1
    rollup = fleet.rollup()
    verdicts_equal = rollup.verdicts == flat.verdicts

    # Rebalance arc: the last zone leaves, its machines re-register
    # with the survivors (consistent hashing moves nothing else), and
    # the next round still covers the whole fleet.
    moves = {}
    if n_zones > 1:
        victim = f"zone-{n_zones - 1}"
        for name in list(zones[victim].machines()):
            h.agents[name].stop_pushing()
        moves = fleet.remove_zone(victim)
        for name, (old, new) in moves.items():
            handle = zones[old].unregister_agent(name)
            zones[new].register_agent(name, handle)
            h.agents[name].start_pushing(zones[new], period_s=0.05)
        zones.pop(victim)
        h.advance(0.2)
        for zone_name, report in hierarchical_round().items():
            fleet.ingest_zone_report(report)
        rollup = fleet.rollup()

    for agent in h.agents.values():
        if agent.pushing:
            agent.stop_pushing()

    pushes = sum(a.total_pushes for a in h.agents.values())
    pushed_rows = sum(a.total_pushed_rows for a in h.agents.values())
    skips = sum(a.total_push_skips for a in h.agents.values())
    return {
        "machines": n_machines,
        "zones": n_zones,
        "shard_sizes": shard_sizes,
        "window_s": window_s,
        "push": {"pushes": pushes, "rows": pushed_rows, "skips": skips},
        "wire_reports_accepted": accepted,
        "verdicts_equal_flat": verdicts_equal,
        "flat_verdicts": [
            (m, v.describe()) for m, v in flat.verdicts
        ],
        "rebalance_moves": {
            m: {"from": old, "to": new} for m, (old, new) in moves.items()
        },
        "rollup": {
            "machines": len(rollup.machines),
            "zones": rollup.zone_names,
            "worst_machine": rollup.worst_machine,
            "degraded_machines": rollup.degraded_machines,
            "worst_health": rollup.worst_health,
            "throughput_pps": rollup.throughput_pps,
            "total_loss_pkts": rollup.total_loss_pkts,
            "verdicts": [(m, v.describe()) for m, v in rollup.verdicts],
            "summary": rollup.summary(),
        },
    }


def cmd_scale(args: argparse.Namespace) -> int:
    import json

    result = _run_scale_scenario(args.machines, args.zones, args.window_s)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
        return 0

    print(
        f"== hierarchical control plane: {result['machines']} machines "
        f"across {result['zones']} zone(s)"
    )
    print(f"  shard sizes: {result['shard_sizes']}")
    push = result["push"]
    print(
        f"  push-on-change: {push['pushes']} push(es) shipped "
        f"{push['rows']} row(s); {push['skips']} clean tick(s) skipped"
    )
    print(
        f"  zone -> root wire: {result['wire_reports_accepted']} "
        f"roll-up(s) accepted over TCP"
    )
    equal = "EQUAL" if result["verdicts_equal_flat"] else "MISMATCH"
    print(f"  verdicts vs flat controller on the same window: {equal}")
    if result["rebalance_moves"]:
        moved = len(result["rebalance_moves"])
        print(
            f"  rebalance: last zone left, {moved} machine(s) moved to "
            f"the survivors — nothing else shuffled"
        )
    print("\n== fleet roll-up at the root (scalars only, no mirrors)")
    r = result["rollup"]
    print(f"  {r['summary']}")
    print(
        f"  throughput {r['throughput_pps']:.0f} pps, "
        f"loss {r['total_loss_pkts']:.0f} pkt(s), "
        f"worst health {r['worst_health']}"
    )
    for machine, verdict in r["verdicts"]:
        print(f"  {machine}: {verdict}")
    return 0 if result["verdicts_equal_flat"] else 1


def _percentiles(values):
    """Small-sample percentile summary for the failover bench JSON."""
    if not values:
        return None
    vals = sorted(values)

    def at(p: float) -> float:
        idx = min(len(vals) - 1, max(0, int(round(p / 100.0 * (len(vals) - 1)))))
        return vals[idx]

    return {"p50": at(50), "p90": at(90), "max": vals[-1], "n": len(vals)}


def _run_chaos_scenario(
    n_machines: int,
    n_zones: int,
    window_s: float,
    arcs: int,
    out_path: Optional[str] = None,
):
    """Kill zones mid-diagnosis; measure the fleet healing itself.

    The self-healing demo: a multi-zone hierarchy runs split-phase
    diagnosis rounds (one zone report per heartbeat) while a chaos
    timeline kills a zone mid-scan.  The root's liveness sweep detects
    the death within the policy deadline, consistent hashing re-homes
    exactly the dead shard to the survivors, agents consult the root
    over TCP (ZONE_FOR) for their new push target, and the roll-up
    reconverges to the flat controller's verdicts.  A restart phase
    brings a replacement zone up (it resubscribes and fast-forwards
    past the root's seq floor) and recovery moves the shard home.  A
    final root-partition arc shows zones going SUSPECT/stale without a
    failover, and the per-endpoint circuit breakers turning repeated
    connect failures into microsecond fast-fails.

    Writes time-to-detect / time-to-reconverge percentiles to
    ``benchmarks/out/BENCH_perf_failover.json`` (or ``out_path``).
    Prints nothing (``--json`` mode must emit clean JSON).
    """
    import json
    import pathlib
    import time as _time

    from repro.core.controller import (
        FleetController,
        ZoneController,
        apply_shard_moves,
    )
    from repro.core.health import ZoneHealthPolicy
    from repro.core.net.client import (
        CIRCUIT_OPEN,
        AgentUnreachable,
        CircuitOpenError,
        CircuitPolicy,
        RetryPolicy,
        ZoneClient,
    )
    from repro.core.net.server import FleetServer
    from repro.middleboxes.http import HttpServer
    from repro.scenarios.common import Harness
    from repro.simnet.packet import Flow
    from repro.workloads.faults import (
        partition_phase,
        schedule_phases,
        zone_kill_phase,
        zone_restart_phase,
    )
    from repro.workloads.traffic import ExternalTrafficSource

    if n_machines < 2 or n_zones < 2:
        raise ValueError("chaos needs at least two machines and two zones")
    if arcs < 1:
        raise ValueError("need at least one kill/restart arc")

    heartbeat_s = 2.0 * window_s  # one report round per heartbeat
    policy = ZoneHealthPolicy(heartbeat_s=heartbeat_s)  # DEAD after 2 beats

    h = Harness(seed=11)
    for i in range(n_machines):
        name = f"host-{i:03d}"
        machine = h.add_machine(name)
        # Every third machine gets a capped VM: a real individual-scope
        # bottleneck verdict for the equality checks to bite on.
        capped = 50e6 if i % 3 == 0 else None
        vm = machine.add_vm("vm0", vcpu_cores=1.0, vnic_bps=capped)
        app = HttpServer(h.sim, vm, f"app-{name}", cpu_per_byte=1e-9)
        flow = Flow(f"rx-{name}", dst_vm="vm0", kind="udp")
        vm.bind_udp(flow, app.socket)
        ExternalTrafficSource(
            h.sim, f"src-{name}", flow, machine.inject,
            rate_bps=200e6 if capped else 100e6,
        )
    h.advance(0.5)

    fleet = FleetController(
        "chaos-root", zone_policy=policy, clock=lambda: h.sim.now
    )
    fleet.track_machines(h.agents)

    class _ZonePushTarget:
        """Stable push endpoint for one zone name across crash/restart.

        Agents keep this object as their push target while the zone
        behind it is killed and replaced.  A dead zone refuses pushes
        the way a dead TCP peer refuses connects, and a zone that no
        longer owns the machine refuses too — both feed the agent's
        backoff/re-home loop.
        """

        def __init__(self, name: str, zone) -> None:
            self.name = name
            self.zone = zone
            self.alive = True

        def ingest_push(self, machine, blocks, cursor=None):
            if not self.alive:
                raise ConnectionError(f"zone {self.name} is down")
            try:
                return self.zone.ingest_push(machine, blocks, cursor)
            except KeyError:
                raise ConnectionError(
                    f"zone {self.name} no longer owns {machine}"
                ) from None

    zones = {}
    targets = {}
    for z in range(n_zones):
        zone_name = f"zone-{z}"
        fleet.register_zone(zone_name)
        zones[zone_name] = ZoneController(zone_name)
        targets[zone_name] = _ZonePushTarget(zone_name, zones[zone_name])
    shard_sizes = {}
    for zone_name, machines in fleet.shards().items():
        shard_sizes[zone_name] = len(machines)
        for name in machines:
            zones[zone_name].register_local_agent(h.agents[name])

    reporting = set(zones)
    link_retry = RetryPolicy(
        max_attempts=2, base_delay_s=0.005, max_delay_s=0.02, deadline_s=2.0
    )
    # Two-outcome window: one exhausted retry ladder after a success is
    # enough to trip — each zone pushes only once per heartbeat, so a
    # wider window would dilute the partition below the threshold.
    breaker = CircuitPolicy(
        window=2, failure_threshold=0.5, min_calls=1, cooldown_s=0.75
    )
    push_backoff = RetryPolicy(
        max_attempts=1, base_delay_s=0.05, max_delay_s=0.4, deadline_s=60.0
    )

    stats = {"reports_accepted": 0, "report_failures": 0, "slow_fail_s": None}
    arcs_out = []
    partition_out = {}

    with FleetServer(fleet) as server:
        host, port = server.address
        links = {
            z: ZoneClient(
                host, port, name=f"{z}-link", retry=link_retry, circuit=breaker
            )
            for z in zones
        }
        consult = ZoneClient(host, port, name="rehome-consult", retry=link_retry)
        try:
            for z in links:
                links[z].subscribe(z)

            def resolver(machine: str):
                """The re-homing consult: ask the root's ring over TCP."""
                return targets[consult.zone_for(machine)]

            for zone_name in zones:
                for name in zones[zone_name].machines():
                    h.agents[name].start_pushing(
                        targets[zone_name], period_s=0.05,
                        resolver=resolver, rehome_after=2, retry=push_backoff,
                    )
            h.advance(0.3)

            def run_round():
                """One heartbeat: scan, report over TCP, sweep liveness."""
                live = sorted(reporting)
                flat_scan = h.controller.begin_fleet_scan(window_s)
                zone_scans = {
                    z: zones[z].begin_fleet_scan(window_s) for z in live
                }
                h.advance(window_s)  # chaos phases fire inside here
                flat = h.controller.finish_fleet_scan(flat_scan)
                for z, scan in zone_scans.items():
                    if z not in reporting:
                        continue  # killed mid-scan: its diagnosis died too
                    report = zones[z].build_zone_report(
                        zones[z].finish_fleet_scan(scan)
                    )
                    try:
                        if links[z].push_report(report.to_wire()):
                            stats["reports_accepted"] += 1
                    except AgentUnreachable as exc:
                        stats["report_failures"] += 1
                        if not isinstance(exc, CircuitOpenError):
                            stats["slow_fail_s"] = exc.elapsed_s
                h.advance(heartbeat_s - window_s)  # agents re-home/back off
                check = fleet.check_zones()
                if check.moves:
                    apply_shard_moves(
                        check.moves, zones, handle_for=lambda m: h.agents[m]
                    )
                rollup = fleet.rollup()
                return flat, check, rollup, rollup.verdicts == flat.verdicts

            # Warmup: the verdict-equality baseline before any chaos.
            baseline_equal = False
            for _ in range(2):
                _, _, _, baseline_equal = run_round()

            for arc in range(arcs):
                victim = f"zone-{arc % n_zones}"
                record = {
                    "victim": victim,
                    "shard": len(zones[victim].machines()),
                }

                t_kill = h.sim.now + window_s / 2

                def kill(victim=victim):
                    targets[victim].alive = False
                    reporting.discard(victim)
                    links[victim].close()  # a crash severs its connections

                schedule_phases(
                    h.sim, [zone_kill_phase(t_kill, kill, zone=victim)]
                )

                detect = None
                moves_ok = False
                for _ in range(4):
                    _, check, _, _ = run_round()
                    if victim in check.failed_over:
                        detect = check.now - t_kill
                        moves_ok = all(
                            old == victim
                            for old, _new in check.moves.values()
                        )
                        break
                record["time_to_detect_s"] = detect
                record["detect_heartbeats"] = (
                    detect / heartbeat_s if detect is not None else None
                )
                record["only_dead_shard_moved"] = moves_ok

                reconverge = None
                if detect is not None:
                    for _ in range(6):
                        _, _, rollup, equal = run_round()
                        if equal and len(rollup.machines) == n_machines:
                            reconverge = h.sim.now - t_kill
                            break
                record["time_to_reconverge_s"] = reconverge

                # Restart: a *new* zone process resubscribes, learns the
                # root's seq floor and earns its way back onto the ring.
                t_restart = h.sim.now + window_s / 2

                def restart(victim=victim):
                    zc = ZoneController(victim)
                    zc.resume_reporting_from(links[victim].subscribe(victim))
                    zones[victim] = zc
                    targets[victim].zone = zc
                    targets[victim].alive = True
                    reporting.add(victim)

                schedule_phases(
                    h.sim,
                    [zone_restart_phase(t_restart, restart, zone=victim)],
                )

                recover = None
                if reconverge is not None:
                    for _ in range(8):
                        _, check, rollup, equal = run_round()
                        if (
                            fleet.zone_record(victim).active
                            and equal
                            and len(rollup.machines) == n_machines
                        ):
                            recover = h.sim.now - t_restart
                            break
                record["time_to_recover_s"] = recover
                record["healed"] = recover is not None
                arcs_out.append(record)

            # Partition arc: root alive but unreachable for under one
            # liveness deadline — zones go stale (SUSPECT), breakers trip
            # and fast-fail, then everything heals without a failover.
            t_p = h.sim.now + window_s / 2
            schedule_phases(
                h.sim,
                [
                    partition_phase(
                        t_p, t_p + 0.6 * heartbeat_s, server, zone="root"
                    )
                ],
            )
            _, _, rollup, _ = run_round()  # report pushes hit the partition
            partition_out["stale_zones"] = rollup.stale_zones
            opened = [
                z for z in sorted(links)
                if links[z].circuit.state == CIRCUIT_OPEN
            ]
            partition_out["breakers_open"] = opened
            fast = None
            if opened:
                t0 = _time.perf_counter()
                try:
                    links[opened[0]].subscribe(opened[0])
                except CircuitOpenError:
                    fast = _time.perf_counter() - t0
                except AgentUnreachable:
                    pass  # cooldown already lapsed into a live probe
            partition_out["fast_fail_s"] = fast
            partition_out["slow_fail_s"] = stats["slow_fail_s"]
            _time.sleep(breaker.cooldown_s + 0.1)  # admit half-open probes
            _, check, rollup, equal = run_round()
            partition_out["healed_without_failover"] = (
                not check.failed_over and equal and not rollup.stale_zones
            )
            partition_out["circuit"] = {
                z: {
                    "state": links[z].circuit.state,
                    "opens": links[z].circuit.opens,
                    "fast_fails": links[z].circuit.fast_fails,
                }
                for z in sorted(links)
            }
        finally:
            for agent in h.agents.values():
                if agent.pushing:
                    agent.stop_pushing()
            consult.close()
            for link in links.values():
                link.close()

    detects = [
        a["time_to_detect_s"] for a in arcs_out
        if a["time_to_detect_s"] is not None
    ]
    reconverges = [
        a["time_to_reconverge_s"] for a in arcs_out
        if a["time_to_reconverge_s"] is not None
    ]
    recovers = [
        a["time_to_recover_s"] for a in arcs_out
        if a["time_to_recover_s"] is not None
    ]
    detect_in_bound = bool(detects) and all(
        d <= 2.0 * heartbeat_s + 1e-9 for d in detects
    )
    ok = (
        baseline_equal
        and len(detects) == len(arcs_out)
        and len(reconverges) == len(arcs_out)
        and len(recovers) == len(arcs_out)
        and all(a["only_dead_shard_moved"] for a in arcs_out)
        and detect_in_bound
        and bool(partition_out.get("healed_without_failover"))
    )
    bench = {
        "bench": "perf_failover",
        "machines": n_machines,
        "zones": n_zones,
        "window_s": window_s,
        "heartbeat_s": heartbeat_s,
        "arcs": len(arcs_out),
        "time_to_detect_s": _percentiles(detects),
        "time_to_reconverge_s": _percentiles(reconverges),
        "time_to_recover_s": _percentiles(recovers),
        "detect_within_2_heartbeats": detect_in_bound,
        "ok": ok,
    }
    out = (
        pathlib.Path(out_path)
        if out_path
        else pathlib.Path("benchmarks/out/BENCH_perf_failover.json")
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")

    return {
        "machines": n_machines,
        "zones": n_zones,
        "heartbeat_s": heartbeat_s,
        "shard_sizes": shard_sizes,
        "baseline_equal_flat": baseline_equal,
        "arcs": arcs_out,
        "partition": partition_out,
        "reports": {
            "accepted": stats["reports_accepted"],
            "failed": stats["report_failures"],
        },
        "push": {
            "pushes": sum(a.total_pushes for a in h.agents.values()),
            "rows": sum(a.total_pushed_rows for a in h.agents.values()),
            "backoff_skips": sum(
                a.total_push_backoff_skips for a in h.agents.values()
            ),
            "rehomes": sum(a.total_rehomes for a in h.agents.values()),
        },
        "bench_path": str(out),
        "bench": bench,
        "ok": ok,
    }


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    machines = min(args.machines, 8) if args.quick else args.machines
    arcs = 1 if args.quick else args.arcs
    result = _run_chaos_scenario(
        machines, args.zones, args.window_s, arcs, out_path=args.out
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
        return 0 if result["ok"] else 1

    print(
        f"== self-healing fleet: {result['machines']} machines across "
        f"{result['zones']} zone(s), heartbeat {result['heartbeat_s']}s"
    )
    print(f"  shard sizes: {result['shard_sizes']}")
    equal = "EQUAL" if result["baseline_equal_flat"] else "MISMATCH"
    print(f"  baseline verdicts vs flat controller: {equal}")
    for i, arc in enumerate(result["arcs"]):
        print(f"\n== kill/restart arc {i}: victim {arc['victim']}")
        if arc["time_to_detect_s"] is None:
            print("  !! zone death never detected")
            continue
        print(
            f"  detected DEAD in {arc['time_to_detect_s']:.2f}s "
            f"({arc['detect_heartbeats']:.2f} heartbeats)"
        )
        shard = "only the dead shard moved" if arc["only_dead_shard_moved"] \
            else "!! machines outside the dead shard moved"
        print(f"  failover: {arc['shard']} machine(s) re-homed — {shard}")
        if arc["time_to_reconverge_s"] is not None:
            print(
                f"  reconverged (verdicts EQUAL flat, full coverage) in "
                f"{arc['time_to_reconverge_s']:.2f}s"
            )
        else:
            print("  !! never reconverged after failover")
        if arc["time_to_recover_s"] is not None:
            print(
                f"  restart healed the ring in {arc['time_to_recover_s']:.2f}s"
            )
        else:
            print("  !! restarted zone never recovered")
    p = result["partition"]
    print("\n== root partition arc (alive but unreachable)")
    print(f"  stale zones while partitioned: {p.get('stale_zones')}")
    print(f"  circuit breakers opened: {p.get('breakers_open')}")
    if p.get("fast_fail_s") is not None and p.get("slow_fail_s"):
        print(
            f"  fast-fail {p['fast_fail_s'] * 1e3:.2f} ms vs "
            f"{p['slow_fail_s'] * 1e3:.1f} ms for the full retry ladder"
        )
    healed = "healed without failover" if p.get("healed_without_failover") \
        else "!! did not heal cleanly"
    print(f"  after heal: {healed}")
    pu = result["push"]
    print(
        f"\n  agents: {pu['pushes']} push(es), {pu['rehomes']} re-home(s), "
        f"{pu['backoff_skips']} backoff skip(s)"
    )
    print(f"  bench written: {result['bench_path']}")
    print(f"\n== {'RECONVERGED' if result['ok'] else 'FAILED TO SELF-HEAL'}")
    return 0 if result["ok"] else 1


def _run_watch_scenario(
    n_machines: int,
    n_zones: int,
    rounds: int,
    fault_round: int,
    window_s: float,
    fault: str = "drop",
    on_round=None,
):
    """Streaming-diagnosis demo: coarse rounds over TCP, one incident.

    Builds a sharded fleet whose coarse roll-ups travel the real
    ZONE_REPORT wire every round, injects one fault mid-run (``drop``:
    a traffic spike past a vNIC cap on the victim; ``crash``: the
    victim's agent goes quiet), and lets the
    :class:`~repro.core.daemon.DiagnosisDaemon` detect, escalate,
    diagnose and de-escalate it.  ``on_round`` (round, RoundResult) is
    the live feed hook — the human-readable command prints each round
    as it happens; ``--json`` passes None so output stays clean.
    Returns a JSON-ready dict plus the incident list for rendering.
    """
    from repro.cluster.chains import build_chain
    from repro.core.controller import FleetController, ZoneController
    from repro.core.daemon import DaemonConfig, DetectorConfig, DiagnosisDaemon
    from repro.core.health import ZoneHealthPolicy
    from repro.core.net.client import ZoneClient
    from repro.core.net.server import FleetServer
    from repro.middleboxes.http import HttpClient, HttpServer
    from repro.middleboxes.proxy import Proxy
    from repro.scenarios.common import Harness
    from repro.simnet.packet import Flow
    from repro.workloads.traffic import ExternalTrafficSource

    if n_machines < 2 or n_zones < 1:
        raise ValueError("watch needs at least two machines and one zone")
    if fault not in ("drop", "crash"):
        raise ValueError(f"unknown fault kind: {fault!r}")
    if not 1 <= fault_round <= rounds:
        raise ValueError("fault_round must fall inside the round budget")

    h = Harness(seed=5)
    sources = {}
    for i in range(n_machines):
        name = f"host-{i:03d}"
        machine = h.add_machine(name)
        vm = machine.add_vm("vm0", vcpu_cores=1.0, vnic_bps=100e6)
        app = HttpServer(h.sim, vm, f"app-{name}", cpu_per_byte=1e-9)
        flow = Flow(f"rx-{name}", dst_vm="vm0", kind="udp")
        vm.bind_udp(flow, app.socket)
        sources[name] = ExternalTrafficSource(
            h.sim, f"src-{name}", flow, machine.inject, rate_bps=60e6
        )
    victim = "host-000"

    # A tenant chain on the victim so the escalation's Algorithm-2 pass
    # has a propagation graph to localize over.
    tenant = h.add_tenant("acme")
    vmachine = h.machines[victim]
    tclient = HttpClient(h.sim, vmachine.add_vm("vm-client", vnic_bps=100e6), "client")
    tproxy = Proxy(h.sim, vmachine.add_vm("vm-proxy", vnic_bps=100e6), "proxy")
    tserver = HttpServer(h.sim, vmachine.add_vm("vm-server", vnic_bps=100e6), "server")
    build_chain([tclient, tproxy, tserver], tenant.vnet)
    for app in (tclient, tproxy, tserver):
        h.register_app(app)

    h.advance(0.5)
    for agent in h.agents.values():
        agent.poll_once()  # seed the detectors' baselines

    heartbeat_s = 2.0 * window_s
    fleet = FleetController(
        "watch-root",
        zone_policy=ZoneHealthPolicy(heartbeat_s=heartbeat_s),
        clock=lambda: h.sim.now,
    )
    fleet.track_machines(h.agents)
    zones = {}
    for z in range(n_zones):
        zone_name = f"zone-{z}"
        fleet.register_zone(zone_name)
        zones[zone_name] = ZoneController(zone_name)
    shard_sizes = {}
    for zone_name, machines in fleet.shards().items():
        shard_sizes[zone_name] = len(machines)
        for name in machines:
            zones[zone_name].register_local_agent(h.agents[name])
    for zone in zones.values():
        zone.register_tenant(tenant)
        for name in zone.machines():
            h.agents[name].start_pushing(zone, period_s=0.05)
    h.advance(0.2)

    round_log = []
    incidents = []
    detected_round = None
    resolved_round = None
    wire_reports = {"accepted": 0}
    last_store_bytes = {}

    with FleetServer(fleet) as server:
        host, port = server.address
        links = {
            z: ZoneClient(host, port, name=f"{z}-link") for z in zones
        }
        try:
            for z in links:
                links[z].subscribe(z)

            def sink(zname, report):
                """Phase 1 -> root over the real ZONE_REPORT wire."""
                if links[zname].push_report(report.to_wire()):
                    wire_reports["accepted"] += 1

            daemon = DiagnosisDaemon(
                zones,
                h.advance,
                fleet=fleet,
                config=DaemonConfig(
                    window_s=window_s, detector=DetectorConfig()
                ),
                agents=h.agents,
                report_sink=sink,
                tenant_for=lambda m: "acme" if m == victim else None,
                clock=lambda: h.sim.now,
            )

            heal_round = None
            for r in range(1, rounds + 1):
                if r == fault_round:
                    if fault == "drop":
                        sources[victim].set_rate(rate_bps=400e6)
                    else:
                        h.agents[victim].stop_pushing()
                res = daemon.tick()
                if res.opened and detected_round is None:
                    detected_round = r
                    heal_round = r + 2
                if heal_round is not None and r >= heal_round and fault == "drop":
                    sources[victim].set_rate(rate_bps=60e6)
                if res.resolved and resolved_round is None:
                    resolved_round = r
                lossy = {
                    m: round(s.pkt_loss_rate, 4)
                    for m, s in res.signals.items()
                    if s.pkt_loss_rate > 0.001
                }
                entry = {
                    "round": r,
                    "lossy": lossy,
                    "opened": [i.machine for i in res.opened],
                    "resolved": [i.machine for i in res.resolved],
                    "diagnosed": list(res.diagnosed),
                    "deferred": list(res.deferred),
                    "zone_states": dict(res.zone_states),
                    "monitor_ms": round(res.monitor_s * 1e3, 3),
                    "history_kib": round(
                        res.store_bytes.get("total", 0) / 1024.0, 1
                    ),
                }
                if res.store_bytes:
                    last_store_bytes = dict(res.store_bytes)
                round_log.append(entry)
                if on_round is not None:
                    on_round(entry)
            incidents = list(daemon.incidents)
            monitor_cost_s = daemon.monitor_cost_s
            daemon_rounds = daemon.rounds
        finally:
            for link in links.values():
                link.close()
            for agent in h.agents.values():
                if agent.pushing:
                    agent.stop_pushing()
                if agent.polling:
                    agent.stop_polling()

    detected = detected_round is not None and any(
        i.machine == victim for i in incidents
    )
    result = {
        "machines": n_machines,
        "zones": n_zones,
        "shard_sizes": shard_sizes,
        "window_s": window_s,
        "fault": fault,
        "victim": victim,
        "fault_round": fault_round,
        "detected": detected,
        "detected_round": detected_round,
        "detection_rounds": (
            detected_round - fault_round + 1
            if detected_round is not None else None
        ),
        "resolved_round": resolved_round,
        "wire_reports_accepted": wire_reports["accepted"],
        "monitor_cost_s": monitor_cost_s,
        "monitor_cost_per_round_ms": (
            monitor_cost_s / daemon_rounds * 1e3 if daemon_rounds else 0.0
        ),
        "history_bytes": last_store_bytes,
        "incidents": [i.to_dict() for i in incidents],
        "rounds": round_log,
    }
    return result, incidents


def cmd_watch(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    machines = min(args.machines, 4) if args.quick else args.machines
    rounds = min(args.rounds, 12) if args.quick else args.rounds
    fault_round = min(args.fault_round, rounds)

    def live(entry):
        lossy = " ".join(
            f"{m}={rate:.1%}" for m, rate in sorted(entry["lossy"].items())
        ) or "-"
        flags = []
        if entry["opened"]:
            flags.append("OPEN " + ",".join(entry["opened"]))
        if entry["diagnosed"]:
            flags.append("diag " + ",".join(entry["diagnosed"]))
        if entry["resolved"]:
            flags.append("RESOLVED " + ",".join(entry["resolved"]))
        if entry["deferred"]:
            flags.append("deferred " + ",".join(entry["deferred"]))
        print(
            f"  round {entry['round']:3d}  loss[{lossy}]  "
            f"monitor {entry['monitor_ms']:.2f}ms  "
            f"hist {entry['history_kib']:.1f}KiB  "
            + ("  ".join(flags) if flags else "steady")
        )

    hub = obs.Observability()
    with obs.installed(hub):
        result, incidents = _run_watch_scenario(
            machines, args.zones, rounds, fault_round, args.window_s,
            fault=args.fault,
            on_round=None if args.json else live,
        )

    if args.json:
        result["prometheus"] = hub.metrics.render_prometheus()
        result["events"] = [e.to_dict() for e in hub.events.events()]
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
        return 0 if result["detected"] else 1

    print(
        f"\n== streaming diagnosis: {result['machines']} machines across "
        f"{result['zones']} zone(s), fault '{result['fault']}' on "
        f"{result['victim']} at round {result['fault_round']}"
    )
    print(f"  shard sizes: {result['shard_sizes']}")
    print(
        f"  coarse roll-ups over TCP: {result['wire_reports_accepted']} "
        f"accepted; monitor cost "
        f"{result['monitor_cost_per_round_ms']:.3f} ms/round"
    )
    hist = result["history_bytes"]
    if hist:
        tiers = "  ".join(
            f"{tier}={n / 1024.0:.1f}KiB"
            for tier, n in sorted(hist.items()) if tier != "total"
        )
        print(
            f"  controller history: {hist.get('total', 0) / 1024.0:.1f}KiB "
            f"({tiers})"
        )
    if not result["detected"]:
        print("\n== !! injected fault was never detected")
        return 1
    print(
        f"  detected in {result['detection_rounds']} round(s) after "
        f"injection"
        + (
            f"; de-escalated at round {result['resolved_round']}"
            if result["resolved_round"] is not None else ""
        )
    )
    for inc in incidents:
        print(
            f"\n== incident #{inc.id}: {inc.machine} "
            f"({inc.reason}, {inc.state})"
        )
        for v in inc.verdicts:
            print(f"  verdict: {v}")
        if inc.trace_id:
            print(f"  trace {inc.trace_id[:8]}...:")
            print(hub.spans.render_tree(inc.trace_id))
    print("== daemon metrics")
    for line in hub.metrics.render_prometheus().splitlines():
        if line.startswith("perfsight_daemon_") and " " in line \
                and not line.startswith("#"):
            print(f"  {line}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="PerfSight reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment inventory").set_defaults(
        fn=cmd_list
    )
    sub.add_parser("quickstart", help="run the quickstart walkthrough").set_defaults(
        fn=cmd_quickstart
    )
    p12 = sub.add_parser("fig12", help="Figure-12 propagation case(s)")
    p12.add_argument(
        "--case",
        choices=("overloaded_server", "underloaded_client", "buggy_nfs", "all"),
        default="all",
    )
    p12.set_defaults(fn=cmd_fig12)
    sub.add_parser("fig10", help="Figure-10 backlog contention").set_defaults(
        fn=cmd_fig10
    )
    sub.add_parser("table1", help="rebuild the Table-1 rule book").set_defaults(
        fn=cmd_table1
    )
    sub.add_parser("fig16", help="poll frequency vs agent CPU").set_defaults(
        fn=cmd_fig16
    )
    p_obs = sub.add_parser(
        "obs",
        help="self-observability demo: spans across the wire, metrics, events",
    )
    p_obs.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (metrics snapshot, Prometheus text, "
        "spans, events) instead of the human-readable report",
    )
    p_obs.set_defaults(fn=cmd_obs)
    p_fleet = sub.add_parser(
        "fleet",
        help="concurrent fleet collection demo: serial vs fanned-out "
        "refresh over real TCP agents, plus a fleet-wide scan",
    )
    p_fleet.add_argument(
        "--agents", type=int, default=4, help="fleet size (default 4)"
    )
    p_fleet.add_argument(
        "--latency-ms", type=float, default=10.0,
        help="emulated management-network RTT per exchange (default 10)",
    )
    p_fleet.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of the human-readable report",
    )
    p_fleet.set_defaults(fn=cmd_fleet)
    p_scale = sub.add_parser(
        "scale",
        help="hierarchical control plane demo: push-mode agents, zone "
        "aggregators, fleet root over TCP, rebalance on zone leave",
    )
    p_scale.add_argument(
        "--machines", type=int, default=9, help="fleet size (default 9)"
    )
    p_scale.add_argument(
        "--zones", type=int, default=3, help="zone count (default 3)"
    )
    p_scale.add_argument(
        "--window-s", type=float, default=0.5,
        help="Algorithm-1 diagnosis window in simulated seconds "
        "(default 0.5)",
    )
    p_scale.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of the human-readable report",
    )
    p_scale.set_defaults(fn=cmd_scale)
    p_chaos = sub.add_parser(
        "chaos",
        help="self-healing fleet demo: kill a zone mid-diagnosis over "
        "TCP, failover + re-homing + reconvergence, then a root "
        "partition with circuit breakers",
    )
    p_chaos.add_argument(
        "--machines", type=int, default=12, help="fleet size (default 12)"
    )
    p_chaos.add_argument(
        "--zones", type=int, default=4, help="zone count (default 4)"
    )
    p_chaos.add_argument(
        "--window-s", type=float, default=0.25,
        help="diagnosis window in simulated seconds; the liveness "
        "heartbeat is twice this (default 0.25)",
    )
    p_chaos.add_argument(
        "--arcs", type=int, default=3,
        help="kill/restart arcs to run (default 3)",
    )
    p_chaos.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: one arc, at most 8 machines",
    )
    p_chaos.add_argument(
        "--out", default=None,
        help="bench JSON path (default benchmarks/out/"
        "BENCH_perf_failover.json)",
    )
    p_chaos.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of the human-readable report",
    )
    p_chaos.set_defaults(fn=cmd_chaos)
    p_watch = sub.add_parser(
        "watch",
        help="always-on streaming diagnosis: live coarse rounds over "
        "TCP, an injected fault, two-phase escalation, the incident "
        "as one linked trace",
    )
    p_watch.add_argument(
        "--machines", type=int, default=6, help="fleet size (default 6)"
    )
    p_watch.add_argument(
        "--zones", type=int, default=2, help="zone count (default 2)"
    )
    p_watch.add_argument(
        "--rounds", type=int, default=16,
        help="monitoring rounds to run (default 16)",
    )
    p_watch.add_argument(
        "--fault-round", type=int, default=4,
        help="round at which the fault is injected (default 4)",
    )
    p_watch.add_argument(
        "--fault", choices=("drop", "crash"), default="drop",
        help="fault kind: traffic spike past a vNIC cap, or the "
        "victim's agent going quiet (default drop)",
    )
    p_watch.add_argument(
        "--window-s", type=float, default=0.25,
        help="monitoring window per round in simulated seconds "
        "(default 0.25)",
    )
    p_watch.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: at most 4 machines, 12 rounds",
    )
    p_watch.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of the live feed; exits "
        "non-zero if the injected fault was not detected",
    )
    p_watch.set_defaults(fn=cmd_watch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
