"""Command-line front end: ``python -m repro.cli <command>``.

Runs the reproduction's experiments and demos from a shell:

* ``quickstart``        — the examples/quickstart.py walkthrough
* ``fig12 --case X``    — one Figure-12 propagation case with the b/t table
* ``fig10``             — the backlog-contention experiment summary
* ``table1``            — rebuild the Table-1 rule book
* ``fig16``             — poll-frequency vs agent CPU table
* ``obs``               — self-observability demo: spans/metrics/events
* ``list``              — the experiment inventory with paper references
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENTS = {
    "fig03": "memory-bandwidth vs network throughput tradeoff (Figure 3)",
    "fig08": "functional validation timeline (Figure 8) [slow: ~2 min]",
    "fig09": "agent response time per channel (Figure 9)",
    "fig10": "pCPU backlog contention (Figure 10)",
    "fig11": "memory-bandwidth contention (Figure 11)",
    "fig12": "root cause under propagation (Figure 12)",
    "fig13": "multi-tenant operator workflow (Figures 13-14)",
    "table1": "resource-shortage/drop-location rule book (Table 1)",
    "table2": "time-counter overhead (Table 2)",
    "fig15": "overhead across middlebox types (Figure 15)",
    "fig16": "poll frequency vs agent CPU (Figure 16)",
    "obs": "self-observability of the pipeline: trace spans across the "
           "wire, metrics registry, structured events (§6 analog)",
}


def cmd_list(args: argparse.Namespace) -> int:
    print("experiments (run the benchmarks for full reproduction):")
    for name, desc in EXPERIMENTS.items():
        print(f"  {name:8s} {desc}")
    return 0


def cmd_quickstart(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
        return 0
    print("examples/quickstart.py not found next to the package", file=sys.stderr)
    return 1


def cmd_fig12(args: argparse.Namespace) -> int:
    from repro.scenarios.fig12_propagation import (
        CASES,
        EXPECTED_ROOT_CAUSE,
        build_and_run,
    )

    cases = CASES if args.case == "all" else (args.case,)
    for case in cases:
        result = build_and_run(case)
        print(f"== {case}")
        names = ["client", "lb", "cf1", "nfs", "server1"]
        print("          " + "".join(f"{n:>10s}" for n in names))
        print(
            "  b/t_in  " + "".join(f"{result.b_over_ti_mbps[n]:10.1f}" for n in names)
        )
        print(
            "  b/t_out " + "".join(f"{result.b_over_to_mbps[n]:10.1f}" for n in names)
        )
        print(
            f"  root causes: {result.report.root_causes} "
            f"(paper: {EXPECTED_ROOT_CAUSE[case]})"
        )
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.scenarios.fig10_backlog_contention import FLOOD_START_S, build_and_run

    result = build_and_run()
    before = result.mean_flow1_mbps(3, FLOOD_START_S)
    after = result.mean_flow1_mbps(FLOOD_START_S + 2, 25)
    print(f"flow1: {before:.0f} Mbps before the flood, {after:.0f} Mbps during")
    print(f"NIC saturated: {result.nic_saturated}")
    print(f"drop locations: { {k: round(v) for k, v in result.drops_by_location.items() if v > 10} }")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.scenarios.table1_rulebook import run_all

    print(f"{'resource in shortage':26s} {'observed class':16s} verdict")
    for row in run_all():
        print(
            f"{row.resource:26s} {row.dominant_class:16s} "
            f"{'/'.join(row.verdict_resources)} ({row.verdict_scope})"
        )
    return 0


def cmd_fig16(args: argparse.Namespace) -> int:
    from repro.scenarios.overhead import run_fig16

    print(f"{'poll Hz':>8s} {'agent CPU %':>12s}")
    for hz, pct in run_fig16():
        print(f"{hz:8.0f} {pct:12.3f}")
    return 0


def _run_obs_scenario():
    """Quickstart world + one diagnosis over real TCP + one crash arc.

    Returns (report, quality) — run under an installed obs hub so the
    whole pipeline records into it.  Prints nothing (``--json`` mode
    must emit clean JSON).
    """
    from repro.cluster.chains import build_chain
    from repro.core.controller import Controller
    from repro.core.diagnosis import RootCauseLocator
    from repro.core.net.client import RemoteAgentHandle, RetryPolicy
    from repro.core.net.server import AgentServer
    from repro.middleboxes.http import HttpClient, HttpServer
    from repro.middleboxes.proxy import Proxy
    from repro.scenarios.common import Harness
    from repro.workloads.faults import inject_perf_bug

    h = Harness(seed=1)
    machine = h.add_machine("host-1")
    tenant = h.add_tenant("acme")
    client = HttpClient(h.sim, machine.add_vm("vm-client", vnic_bps=100e6), "client")
    proxy = Proxy(h.sim, machine.add_vm("vm-proxy", vnic_bps=100e6), "proxy")
    server = HttpServer(h.sim, machine.add_vm("vm-server", vnic_bps=100e6), "server")
    build_chain([client, proxy, server], tenant.vnet)
    for app in (client, proxy, server):
        h.register_app(app)
    h.advance(1.5)
    inject_perf_bug(proxy, 50.0)
    h.advance(1.0)

    agent = h.agents["host-1"]
    srv = AgentServer(agent).start()
    host, port = srv.address
    handle = RemoteAgentHandle(
        host, port,
        retry=RetryPolicy(
            max_attempts=2, base_delay_s=0.001, max_delay_s=0.005, deadline_s=5.0
        ),
    )
    remote = Controller("obs-demo-controller")
    remote.register_agent("host-1", handle)
    remote.register_tenant(tenant)
    try:
        report = RootCauseLocator(remote, h.advance, window_s=1.0).run("acme")
        # Crash/restart arc: a dead agent degrades health (events +
        # failed-sync metrics), a rebind on the same port recovers it.
        srv.shutdown()
        remote.refresh("host-1")
        srv = AgentServer(agent, host=host, port=port).start()
        remote.refresh("host-1")
        quality = remote.data_quality("host-1", now=h.sim.now)
    finally:
        handle.close()
        srv.shutdown()
    return report, quality


def cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.core.channels import READ_LATENCY_METRIC

    hub = obs.Observability()
    with obs.installed(hub):
        report, quality = _run_obs_scenario()

    diag_spans = hub.spans.by_name("diagnosis.propagation")
    trace_id = diag_spans[-1].trace_id if diag_spans else None

    if args.json:
        print(json.dumps(
            {
                "root_causes": report.root_causes,
                "data_quality": quality.describe(),
                "metrics": hub.metrics.snapshot(),
                "prometheus": hub.metrics.render_prometheus(),
                "spans": [s.to_dict() for s in hub.spans.finished()],
                "trace_id": trace_id,
                "events": [e.to_dict() for e in hub.events.events()],
            },
            indent=2, sort_keys=True, default=str,
        ))
        return 0

    print("== diagnosis over TCP")
    print(report.summary())
    print(f"  data quality after crash/restart arc: {quality.describe()}")

    if trace_id is not None:
        print(f"\n== span tree of the diagnosis run (trace {trace_id[:8]}...)")
        print(hub.spans.render_tree(trace_id))

    print("\n== slowest spans")
    for s in hub.spans.slowest(10):
        print(
            f"  {s.duration_s * 1e3:9.3f}ms {s.name:22s} "
            f"trace={s.trace_id[:8]} span={s.span_id[:8]} "
            f"parent={(s.parent_id or '-')[:8]}"
        )

    print("\n== channel read latency (software Figure 9, simulated seconds)")
    print(f"  {'kind':12s} {'reads':>6s} {'p50':>10s} {'p99':>10s} {'max':>10s}")
    for key, hist in sorted(hub.metrics.children(READ_LATENCY_METRIC).items()):
        kind = dict(key).get("kind", "?")
        print(
            f"  {kind:12s} {hist.count:6d} {hist.quantile(0.5) * 1e3:8.3f}ms "
            f"{hist.quantile(0.99) * 1e3:8.3f}ms {hist.max * 1e3:8.3f}ms"
        )

    print("\n== events")
    for e in hub.events.events():
        print(f"  {e.to_json()}")

    print(
        f"\n== metrics registry: {len(hub.metrics)} series across "
        f"{len(hub.metrics.names())} families (full Prometheus text "
        f"via --json)"
    )
    for name in hub.metrics.names():
        print(f"  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="PerfSight reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment inventory").set_defaults(
        fn=cmd_list
    )
    sub.add_parser("quickstart", help="run the quickstart walkthrough").set_defaults(
        fn=cmd_quickstart
    )
    p12 = sub.add_parser("fig12", help="Figure-12 propagation case(s)")
    p12.add_argument(
        "--case",
        choices=("overloaded_server", "underloaded_client", "buggy_nfs", "all"),
        default="all",
    )
    p12.set_defaults(fn=cmd_fig12)
    sub.add_parser("fig10", help="Figure-10 backlog contention").set_defaults(
        fn=cmd_fig10
    )
    sub.add_parser("table1", help="rebuild the Table-1 rule book").set_defaults(
        fn=cmd_table1
    )
    sub.add_parser("fig16", help="poll frequency vs agent CPU").set_defaults(
        fn=cmd_fig16
    )
    p_obs = sub.add_parser(
        "obs",
        help="self-observability demo: spans across the wire, metrics, events",
    )
    p_obs.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (metrics snapshot, Prometheus text, "
        "spans, events) instead of the human-readable report",
    )
    p_obs.set_defaults(fn=cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
